//! Error types of the pub/sub layer.

use std::error::Error;
use std::fmt;

/// Errors returned by the public pub/sub API.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PubSubError {
    /// An event or subscription used a different number of dimensions than
    /// its event space defines.
    DimensionMismatch {
        /// Dimensions of the event space.
        expected: usize,
        /// Dimensions supplied by the caller.
        got: usize,
    },
    /// An attribute value lies outside its domain.
    ValueOutOfDomain {
        /// Attribute name.
        attr: String,
        /// The offending value.
        value: u64,
        /// The domain size (valid values are `0..size`).
        size: u64,
    },
    /// A constraint's bounds are inverted (`lo > hi`).
    EmptyConstraint {
        /// Lower bound supplied.
        lo: u64,
        /// Upper bound supplied.
        hi: u64,
    },
    /// A named attribute does not exist in the event space.
    UnknownAttribute {
        /// The name that failed to resolve.
        name: String,
    },
    /// A subscription has no constraint on any attribute and the active
    /// mapping cannot place fully-wildcard subscriptions.
    UnconstrainedSubscription,
    /// A node index does not name a node of the network.
    UnknownNode {
        /// The index supplied by the caller.
        node: usize,
        /// Number of nodes in the network (valid indices are `0..nodes`).
        nodes: usize,
    },
    /// A subscription was built for a different event space than the
    /// network's (its dimension count does not match).
    InvalidSubscription {
        /// Dimensions of the network's event space.
        expected: usize,
        /// Dimensions of the supplied subscription.
        got: usize,
    },
}

impl fmt::Display for PubSubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PubSubError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} attribute values, got {got}")
            }
            PubSubError::ValueOutOfDomain { attr, value, size } => {
                write!(
                    f,
                    "value {value} of attribute {attr} outside domain 0..{size}"
                )
            }
            PubSubError::EmptyConstraint { lo, hi } => {
                write!(f, "constraint bounds inverted: {lo} > {hi}")
            }
            PubSubError::UnknownAttribute { name } => {
                write!(f, "unknown attribute {name:?}")
            }
            PubSubError::UnconstrainedSubscription => {
                write!(f, "subscription constrains no attribute")
            }
            PubSubError::UnknownNode { node, nodes } => {
                write!(f, "node {node} does not exist (network has {nodes} nodes)")
            }
            PubSubError::InvalidSubscription { expected, got } => {
                write!(
                    f,
                    "subscription has {got} dimensions but the network's event space has {expected}"
                )
            }
        }
    }
}

impl Error for PubSubError {}

/// Errors detected while validating a network configuration in
/// [`PubSubNetworkBuilder::build`](crate::PubSubNetworkBuilder::build).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The network was configured with zero nodes.
    NoNodes,
    /// The pub/sub mapping and the overlay disagree on the key space.
    KeySpaceMismatch {
        /// Bit width of the mapping's key space.
        mapping_bits: u32,
        /// Bit width of the overlay's key space.
        overlay_bits: u32,
    },
    /// The replication factor exceeds the overlay's successor-list length,
    /// so some replicas could never be placed.
    ReplicationTooLarge {
        /// The configured replication factor.
        replication: usize,
        /// The overlay's successor-list length.
        succ_list_len: usize,
    },
    /// A buffered or collecting notify mode was configured with a zero
    /// flush period, which would flush in a busy loop at a single instant.
    ZeroFlushPeriod,
    /// More than one event-loop shard was requested but the delay model
    /// admits zero-delay hops, leaving the conservative parallel engine no
    /// lookahead window to run epochs in.
    ZeroLookahead,
    /// The sorted matching engine was selected for an event space with
    /// more dimensions than its per-row constrained-dimension bitmask can
    /// hold.
    TooManyDimensions {
        /// Dimensions of the configured event space.
        dims: usize,
        /// The engine's limit.
        limit: usize,
    },
    /// The adaptive rendezvous policy was configured with a degenerate
    /// tuning: zero mirror groups (nothing to split into), more groups
    /// than the key space has disjoint mirror positions, or a zero
    /// control interval (the control loop would never advance time).
    BadRendezvousTuning {
        /// The configured mirror-group count.
        groups: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "a network needs at least one node"),
            ConfigError::KeySpaceMismatch {
                mapping_bits,
                overlay_bits,
            } => write!(
                f,
                "pub/sub mapping uses a 2^{mapping_bits} key space but the overlay uses 2^{overlay_bits}"
            ),
            ConfigError::ReplicationTooLarge {
                replication,
                succ_list_len,
            } => write!(
                f,
                "replication factor {replication} exceeds successor-list length {succ_list_len}"
            ),
            ConfigError::ZeroFlushPeriod => {
                write!(f, "buffered/collecting notification mode needs a non-zero period")
            }
            ConfigError::ZeroLookahead => write!(
                f,
                "sharded simulation needs a delay model with a positive minimum delay"
            ),
            ConfigError::TooManyDimensions { dims, limit } => write!(
                f,
                "sorted matching engine supports at most {limit} dimensions, space has {dims}"
            ),
            ConfigError::BadRendezvousTuning { groups } => write!(
                f,
                "adaptive rendezvous needs 1..=63 mirror groups that fit the key space \
                 and a non-zero control interval (got {groups} groups)"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_complete() {
        let e = PubSubError::ValueOutOfDomain {
            attr: "x".into(),
            value: 12,
            size: 10,
        };
        assert_eq!(
            e.to_string(),
            "value 12 of attribute x outside domain 0..10"
        );
        let e = PubSubError::DimensionMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().starts_with("expected 4"));
        let e = PubSubError::UnknownAttribute { name: "q".into() };
        assert!(e.to_string().contains("\"q\""));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &(dyn Error + Send + Sync)) {}
        takes_err(&PubSubError::UnconstrainedSubscription);
    }
}

//! Error types of the pub/sub layer.

use std::error::Error;
use std::fmt;

/// Errors returned by the public pub/sub API.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PubSubError {
    /// An event or subscription used a different number of dimensions than
    /// its event space defines.
    DimensionMismatch {
        /// Dimensions of the event space.
        expected: usize,
        /// Dimensions supplied by the caller.
        got: usize,
    },
    /// An attribute value lies outside its domain.
    ValueOutOfDomain {
        /// Attribute name.
        attr: String,
        /// The offending value.
        value: u64,
        /// The domain size (valid values are `0..size`).
        size: u64,
    },
    /// A constraint's bounds are inverted (`lo > hi`).
    EmptyConstraint {
        /// Lower bound supplied.
        lo: u64,
        /// Upper bound supplied.
        hi: u64,
    },
    /// A named attribute does not exist in the event space.
    UnknownAttribute {
        /// The name that failed to resolve.
        name: String,
    },
    /// A subscription has no constraint on any attribute and the active
    /// mapping cannot place fully-wildcard subscriptions.
    UnconstrainedSubscription,
}

impl fmt::Display for PubSubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PubSubError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} attribute values, got {got}")
            }
            PubSubError::ValueOutOfDomain { attr, value, size } => {
                write!(
                    f,
                    "value {value} of attribute {attr} outside domain 0..{size}"
                )
            }
            PubSubError::EmptyConstraint { lo, hi } => {
                write!(f, "constraint bounds inverted: {lo} > {hi}")
            }
            PubSubError::UnknownAttribute { name } => {
                write!(f, "unknown attribute {name:?}")
            }
            PubSubError::UnconstrainedSubscription => {
                write!(f, "subscription constrains no attribute")
            }
        }
    }
}

impl Error for PubSubError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_complete() {
        let e = PubSubError::ValueOutOfDomain {
            attr: "x".into(),
            value: 12,
            size: 10,
        };
        assert_eq!(
            e.to_string(),
            "value 12 of attribute x outside domain 0..10"
        );
        let e = PubSubError::DimensionMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().starts_with("expected 4"));
        let e = PubSubError::UnknownAttribute { name: "q".into() };
        assert!(e.to_string().contains("\"q\""));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &(dyn Error + Send + Sync)) {}
        takes_err(&PubSubError::UnconstrainedSubscription);
    }
}

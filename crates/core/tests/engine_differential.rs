//! Differential test of the two matching engines and the covering layer:
//! a seeded random stream of subscribe / unsubscribe / publish operations
//! is applied to every engine × covering configuration of the
//! [`SubscriptionStore`] and to the brute-force [`Oracle`], and every
//! probe's match set — plus the stores' logical sizes and peaks — must
//! agree exactly. Covering and the sorted index reorganize *physical*
//! state only; any observable difference is a correctness bug.

use cbps::{
    AttributeDef, Event, EventSpace, MatchEngineKind, Oracle, StoredSub, SubId, Subscription,
    SubscriptionStore,
};
use cbps_overlay::{KeyRangeSet, KeySpace, Peer};
use cbps_rng::Rng;
use cbps_sim::{SimTime, TraceId};

fn space() -> EventSpace {
    EventSpace::new(vec![
        AttributeDef::new("x", 1000),
        AttributeDef::new("y", 200),
        AttributeDef::new("z", 50),
    ])
}

/// A random subscription mixing narrow and wide ranges with wildcards.
/// Wide ranges make covered-by relations common; re-used shapes (drawn by
/// the caller from earlier subscriptions) exercise the duplicate path.
fn random_sub(rng: &mut Rng, space: &EventSpace) -> Subscription {
    loop {
        let mut b = Subscription::builder(space);
        let mut constrained = false;
        for d in 0..space.dims() {
            if rng.gen_bool(0.4) {
                continue; // wildcard
            }
            let size = space.attr(d).size();
            let wide = rng.gen_bool(0.3);
            let max_w = if wide { size } else { (size / 10).max(1) };
            let w = rng.gen_range(0..max_w);
            let lo = rng.gen_range(0..size - w);
            b = b
                .range(space.attr(d).name(), lo, lo + w)
                .expect("bounds are in-domain");
            constrained = true;
        }
        if constrained {
            return b.build().expect("at least one constraint");
        }
    }
}

fn random_event(rng: &mut Rng, space: &EventSpace) -> Event {
    let values = (0..space.dims())
        .map(|d| rng.gen_range(0..space.attr(d).size()))
        .collect();
    Event::new_unchecked(values)
}

const CONFIGS: [(MatchEngineKind, bool); 4] = [
    (MatchEngineKind::Counting, false),
    (MatchEngineKind::Counting, true),
    (MatchEngineKind::Sorted, false),
    (MatchEngineKind::Sorted, true),
];

#[test]
fn engines_and_covering_match_the_oracle() {
    let space = space();
    let keys = KeySpace::new(8);
    let subscriber = Peer {
        idx: 0,
        key: keys.key(1),
    };
    let sk = KeyRangeSet::of_key(keys, keys.key(2));
    let mut rng = Rng::seed_from_u64(0xd1ff_e4e2 ^ 0x0bad_cafe);

    for case in 0..16 {
        let mut stores: Vec<SubscriptionStore> = CONFIGS
            .iter()
            .map(|&(engine, covering)| SubscriptionStore::with_options(&space, engine, covering))
            .collect();
        let mut oracle = Oracle::new();
        let mut shapes: Vec<Subscription> = Vec::new();
        let mut live: Vec<SubId> = Vec::new();
        let mut next_id = 0u64;
        let mut clock = 0u64;
        let mut out = Vec::new();
        let mut probes = 0usize;

        for _step in 0..1500 {
            clock += rng.gen_range(0u64..3);
            let now = SimTime::from_secs(clock);
            match rng.gen_range(0u32..100) {
                // Subscribe (sometimes an exact repeat of an earlier shape,
                // hitting the covering table's duplicate fast path).
                0..=54 => {
                    let sub = if !shapes.is_empty() && rng.gen_bool(0.25) {
                        shapes[rng.gen_range(0..shapes.len() as u64) as usize].clone()
                    } else {
                        random_sub(&mut rng, &space)
                    };
                    shapes.push(sub.clone());
                    let expires = if rng.gen_bool(0.4) {
                        SimTime::from_secs(clock + rng.gen_range(1u64..200))
                    } else {
                        SimTime::MAX
                    };
                    let id = SubId(next_id);
                    next_id += 1;
                    for store in &mut stores {
                        let fresh = store.insert(
                            id,
                            StoredSub {
                                sub: sub.clone(),
                                subscriber,
                                expires,
                                sk: sk.clone(),
                                trace: TraceId::NONE,
                                subgroups: 0,
                            },
                            now,
                        );
                        assert!(fresh, "case {case}: id {id:?} is never re-used");
                    }
                    oracle.add_sub(id, sub, now, expires);
                    live.push(id);
                }
                // Unsubscribe a random live id (possibly already expired —
                // the stores and the oracle must agree on that too).
                55..=69 if !live.is_empty() => {
                    let pick = rng.gen_range(0..live.len() as u64) as usize;
                    let id = live.swap_remove(pick);
                    let removed: Vec<bool> =
                        stores.iter_mut().map(|s| s.remove(id).is_some()).collect();
                    assert!(
                        removed.iter().all(|&r| r == removed[0]),
                        "case {case}: stores disagree on removing {id:?}: {removed:?}"
                    );
                    oracle.remove_sub(id, now);
                }
                // Publish a probe event and compare every configuration's
                // match set against the brute-force oracle.
                _ => {
                    let event = random_event(&mut rng, &space);
                    let expected = oracle.matching_at(&event, now);
                    for (i, store) in stores.iter_mut().enumerate() {
                        store.match_event_into(&event, now, &mut out);
                        let got: Vec<SubId> = out.iter().map(|(id, _)| *id).collect();
                        assert_eq!(
                            got, expected,
                            "case {case}: config {:?} diverged from the oracle at {now:?}",
                            CONFIGS[i]
                        );
                    }
                    probes += 1;
                }
            }
            // Logical observables never depend on the physical layout.
            let len0 = stores[0].len();
            let peak0 = stores[0].peak();
            for (i, store) in stores.iter().enumerate() {
                assert_eq!(store.len(), len0, "case {case}: len of config {i}");
                assert_eq!(store.peak(), peak0, "case {case}: peak of config {i}");
            }
            // Covering may only shrink the physical population.
            for store in &stores {
                assert!(
                    store.physical_len() <= store.len(),
                    "case {case}: physical entries exceed logical"
                );
            }
        }
        assert!(
            probes > 100,
            "case {case}: degenerate op mix ({probes} probes)"
        );
    }
}

/// Covering must actually collapse state on a covering-heavy stream, not
/// just stay correct — otherwise the physical-sharing path is dead code.
#[test]
fn covering_collapses_wide_streams() {
    let space = space();
    let keys = KeySpace::new(8);
    let subscriber = Peer {
        idx: 0,
        key: keys.key(1),
    };
    let sk = KeyRangeSet::of_key(keys, keys.key(2));
    let mut rng = Rng::seed_from_u64(0xc0de_516e);
    let mut store = SubscriptionStore::with_options(&space, MatchEngineKind::Sorted, true);
    // One broad umbrella plus many subscriptions nested inside it.
    let umbrella = Subscription::builder(&space)
        .range("x", 0, 999)
        .unwrap()
        .build()
        .unwrap();
    store.insert(
        SubId(0),
        StoredSub {
            sub: umbrella,
            subscriber,
            expires: SimTime::MAX,
            sk: sk.clone(),
            trace: TraceId::NONE,
            subgroups: 0,
        },
        SimTime::ZERO,
    );
    for i in 1..400u64 {
        let lo = rng.gen_range(0u64..900);
        let sub = Subscription::builder(&space)
            .range("x", lo, lo + rng.gen_range(0u64..100))
            .unwrap()
            .build()
            .unwrap();
        store.insert(
            SubId(i),
            StoredSub {
                sub,
                subscriber,
                expires: SimTime::MAX,
                sk: sk.clone(),
                trace: TraceId::NONE,
                subgroups: 0,
            },
            SimTime::ZERO,
        );
    }
    assert_eq!(store.len(), 400);
    assert_eq!(
        store.physical_len(),
        1,
        "every x-only subscription is covered by the umbrella"
    );
    // And the delivered sets are still exact.
    let mut out = Vec::new();
    store.match_event_into(
        &Event::new_unchecked(vec![950, 0, 0]),
        SimTime::ZERO,
        &mut out,
    );
    let hit_ids: Vec<u64> = out.iter().map(|(id, _)| id.0).collect();
    assert!(hit_ids.contains(&0), "umbrella matches 950");
    // Only nested subs whose range reaches 950 may appear.
    assert!(out.iter().all(|(id, s)| id.0 == 0 || {
        let c = s.sub.constraint(0).expect("x is constrained");
        c.lo() <= 950 && 950 <= c.hi()
    }));
}

//! The fallible, handle-based public API: error paths, handle round
//! trips, and builder validation.

use cbps::{
    AttributeDef, ConfigError, Event, EventSpace, NotifyMode, PubSubConfig, PubSubError,
    PubSubNetwork, Subscription,
};
use cbps_overlay::{KeySpace, OverlayConfig};
use cbps_sim::SimDuration;

fn two_dim_space() -> EventSpace {
    EventSpace::new(vec![
        AttributeDef::new("a0", 1 << 20),
        AttributeDef::new("a1", 1 << 20),
    ])
}

fn small_net(nodes: usize) -> PubSubNetwork {
    PubSubNetwork::builder()
        .nodes(nodes)
        .seed(5)
        .build()
        .expect("valid network configuration")
}

#[test]
fn handles_round_trip_subscribe_publish_deliver() {
    let mut net = small_net(30);
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a0", 0, 999_999)
        .unwrap()
        .build()
        .unwrap();
    let sub_id = net.node(3).unwrap().subscribe(sub, None).unwrap();
    net.run_for_secs(10);
    let event = Event::new(&space, vec![5, 1, 2, 3]).unwrap();
    let event_id = net.node(9).unwrap().publish(event).unwrap();
    net.run_for_secs(10);
    let handle = net.node(3).unwrap();
    assert_eq!(handle.idx(), 3);
    let notes = handle.delivered();
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].sub_id, sub_id);
    assert_eq!(notes[0].event_id, event_id);
    assert!(net.node(3).unwrap().unsubscribe(sub_id).unwrap());
    assert!(!net.node(3).unwrap().unsubscribe(sub_id).unwrap());
}

#[test]
fn unknown_node_is_an_error_not_a_panic() {
    let mut net = small_net(10);
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a0", 0, 10)
        .unwrap()
        .build()
        .unwrap();
    let err = net.node(10).unwrap_err();
    assert_eq!(
        err,
        PubSubError::UnknownNode {
            node: 10,
            nodes: 10
        }
    );
    let err = net.subscribe(99, sub.clone(), None).unwrap_err();
    assert_eq!(
        err,
        PubSubError::UnknownNode {
            node: 99,
            nodes: 10
        }
    );
    let event = Event::new(&space, vec![1, 2, 3, 4]).unwrap();
    assert!(matches!(
        net.publish(11, event),
        Err(PubSubError::UnknownNode {
            node: 11,
            nodes: 10
        })
    ));
    assert!(matches!(
        net.unsubscribe(10, cbps::SubId::compose(0, 0)),
        Err(PubSubError::UnknownNode { .. })
    ));
    // The message names both the index and the valid range.
    assert_eq!(
        net.node(10).unwrap_err().to_string(),
        "node 10 does not exist (network has 10 nodes)"
    );
}

#[test]
fn foreign_space_subscription_is_rejected() {
    let mut net = small_net(10);
    let other = two_dim_space();
    let sub = Subscription::builder(&other)
        .range("a0", 0, 10)
        .unwrap()
        .build()
        .unwrap();
    let err = net.node(1).unwrap().subscribe(sub, None).unwrap_err();
    assert_eq!(
        err,
        PubSubError::InvalidSubscription {
            expected: 4,
            got: 2
        }
    );
}

#[test]
fn foreign_space_event_is_rejected() {
    let mut net = small_net(10);
    let other = two_dim_space();
    let event = Event::new(&other, vec![1, 2]).unwrap();
    let err = net.node(1).unwrap().publish(event).unwrap_err();
    assert_eq!(
        err,
        PubSubError::DimensionMismatch {
            expected: 4,
            got: 2
        }
    );
}

#[test]
fn builder_rejects_zero_nodes() {
    let err = PubSubNetwork::builder().nodes(0).build().unwrap_err();
    assert_eq!(err, ConfigError::NoNodes);
}

#[test]
fn builder_rejects_key_space_mismatch() {
    let err = PubSubNetwork::builder()
        .nodes(10)
        .pubsub(PubSubConfig::paper_default().with_key_space(KeySpace::new(10)))
        .overlay(OverlayConfig::paper_default())
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ConfigError::KeySpaceMismatch {
            mapping_bits: 10,
            overlay_bits: 13,
        }
    );
}

#[test]
fn builder_rejects_oversized_replication() {
    let err = PubSubNetwork::builder()
        .nodes(10)
        .pubsub(PubSubConfig::paper_default().with_replication(9))
        .overlay(OverlayConfig::paper_default().with_succ_list_len(4))
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ConfigError::ReplicationTooLarge {
            replication: 9,
            succ_list_len: 4,
        }
    );
}

#[test]
fn builder_rejects_zero_flush_period() {
    for notify in [
        NotifyMode::Buffered {
            period: SimDuration::ZERO,
        },
        NotifyMode::Collecting {
            period: SimDuration::ZERO,
        },
    ] {
        let err = PubSubNetwork::builder()
            .nodes(10)
            .pubsub(PubSubConfig::paper_default().with_notify_mode(notify))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroFlushPeriod);
    }
}

#[test]
fn config_errors_explain_themselves() {
    assert_eq!(
        ConfigError::NoNodes.to_string(),
        "a network needs at least one node"
    );
    assert!(ConfigError::KeySpaceMismatch {
        mapping_bits: 10,
        overlay_bits: 13
    }
    .to_string()
    .contains("2^10"));
}

#[test]
fn build_unchecked_is_the_escape_hatch() {
    // A configuration build() would accept also builds unchecked, to the
    // same deployment.
    let mut net = PubSubNetwork::builder().nodes(12).seed(1).build_unchecked();
    assert_eq!(net.len(), 12);
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a0", 0, 999_999)
        .unwrap()
        .build()
        .unwrap();
    net.node(2).unwrap().subscribe(sub, None).unwrap();
    net.run_for_secs(10);
    net.node(5)
        .unwrap()
        .publish(Event::new(&space, vec![1, 2, 3, 4]).unwrap())
        .unwrap();
    net.run_for_secs(10);
    assert_eq!(net.delivered(2).len(), 1);
}

//! Behavioral tests of the pub/sub node internals driven through real
//! networks: collecting chains, flush cycles, jittered delays, and the
//! interplay of optimizations with each mapping.

use cbps::{Event, MappingKind, NotifyMode, Primitive, PubSubConfig, PubSubNetwork, Subscription};
use cbps_sim::{DelayModel, NetConfig, SimDuration, TrafficClass};

#[test]
fn collect_items_traverse_multiple_ring_hops() {
    // A very wide selective range spans many contiguous rendezvous nodes;
    // a match at the range edge must travel several 1-hop exchanges to the
    // agent in the middle.
    let mut net = PubSubNetwork::builder()
        .nodes(120)
        .net_config(NetConfig::new(41))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_primitive(Primitive::MCast)
                .with_notify_mode(NotifyMode::Collecting {
                    period: SimDuration::from_secs(2),
                }),
        )
        .build()
        .expect("valid network configuration");
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a0", 100_000, 500_000) // ~3300 keys ≈ 45+ nodes at n=120
        .unwrap()
        .build()
        .unwrap();
    net.subscribe(3, sub, None).unwrap();
    net.run_for_secs(60);

    // Publish events near the *edges* of the subscribed range.
    net.publish(7, Event::new(&space, vec![101_000, 1, 2, 3]).unwrap())
        .unwrap();
    net.publish(8, Event::new(&space, vec![499_000, 4, 5, 6]).unwrap())
        .unwrap();
    net.run_for_secs(600);

    assert_eq!(net.delivered(3).len(), 2, "collect chain lost matches");
    // Edge matches need > 1 collect exchange to reach the middle agent.
    assert!(
        net.metrics().messages(TrafficClass::COLLECT) >= 4,
        "expected multi-hop collect chains, saw {}",
        net.metrics().messages(TrafficClass::COLLECT)
    );
}

#[test]
fn collecting_works_when_subscription_has_one_rendezvous() {
    // Key Space-Split maps a subscription to ~1 key: the rendezvous is its
    // own agent and no neighbor exchange should be needed.
    let mut net = PubSubNetwork::builder()
        .nodes(60)
        .net_config(NetConfig::new(42))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::KeySpaceSplit)
                .with_notify_mode(NotifyMode::Collecting {
                    period: SimDuration::from_secs(2),
                }),
        )
        .build()
        .expect("valid network configuration");
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a0", 200_000, 210_000)
        .unwrap()
        .range("a1", 0, 999_999)
        .unwrap()
        .range("a2", 0, 999_999)
        .unwrap()
        .range("a3", 0, 999_999)
        .unwrap()
        .build()
        .unwrap();
    net.subscribe(2, sub, None).unwrap();
    net.run_for_secs(60);
    net.publish(9, Event::new(&space, vec![205_000, 1, 2, 3]).unwrap())
        .unwrap();
    net.run_for_secs(120);
    assert_eq!(net.delivered(2).len(), 1);
}

#[test]
fn buffered_flushes_are_periodic_not_single_shot() {
    // Matches arriving in separate periods produce separate batch messages.
    let period = SimDuration::from_secs(4);
    let mut net = PubSubNetwork::builder()
        .nodes(50)
        .net_config(NetConfig::new(43))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_notify_mode(NotifyMode::Buffered { period }),
        )
        .build()
        .expect("valid network configuration");
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space).eq("a3", 500).build().unwrap();
    net.subscribe(1, sub, None).unwrap();
    net.run_for_secs(60);

    // Two bursts, separated by far more than the flush period.
    for i in 0..3u64 {
        net.publish(5, Event::new(&space, vec![i, i, i, 500]).unwrap())
            .unwrap();
    }
    net.run_for_secs(120);
    let after_first = net.metrics().counter("notifications.messages");
    for i in 10..13u64 {
        net.publish(5, Event::new(&space, vec![i, i, i, 500]).unwrap())
            .unwrap();
    }
    net.run_for_secs(120);
    let after_second = net.metrics().counter("notifications.messages");

    assert_eq!(net.delivered(1).len(), 6);
    assert!(after_first >= 1);
    assert!(
        after_second > after_first,
        "second burst must trigger a new flush cycle"
    );
    // Batching really happened: fewer messages than notifications.
    assert!(after_second < 6);
}

#[test]
fn jittered_delays_preserve_correctness() {
    let mut net = PubSubNetwork::builder()
        .nodes(60)
        .net_config(NetConfig::new(44).with_delay(DelayModel::Uniform {
            min: SimDuration::from_millis(5),
            max: SimDuration::from_millis(200),
        }))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::AttributeSplit)
                .with_primitive(Primitive::MCast),
        )
        .build()
        .expect("valid network configuration");
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a0", 300_000, 360_000)
        .unwrap()
        .build()
        .unwrap();
    net.subscribe(4, sub, None).unwrap();
    net.run_for_secs(60);
    for i in 0..8u64 {
        net.publish(
            (10 + i) as usize,
            Event::new(&space, vec![300_000 + i * 7_000, 1, 2, 3]).unwrap(),
        )
        .unwrap();
    }
    net.run_for_secs(120);
    assert_eq!(net.delivered(4).len(), 8);
}

#[test]
fn disjunctions_notify_once_per_matching_disjunct() {
    let mut net = PubSubNetwork::builder()
        .nodes(40)
        .net_config(NetConfig::new(45))
        .pubsub(PubSubConfig::paper_default().with_mapping(MappingKind::SelectiveAttribute))
        .build()
        .expect("valid network configuration");
    let space = net.config().space.clone();
    // "a0 < 100k OR a1 < 100k" as two subscriptions.
    let d1 = Subscription::builder(&space)
        .range("a0", 0, 100_000)
        .unwrap()
        .build()
        .unwrap();
    let d2 = Subscription::builder(&space)
        .range("a1", 0, 100_000)
        .unwrap()
        .build()
        .unwrap();
    let ids = net.subscribe_any(6, [d1, d2], None).unwrap();
    assert_eq!(ids.len(), 2);
    net.run_for_secs(60);

    // Matches only the first disjunct.
    net.publish(9, Event::new(&space, vec![50_000, 900_000, 1, 2]).unwrap())
        .unwrap();
    // Matches both disjuncts.
    net.publish(9, Event::new(&space, vec![50_000, 50_000, 1, 2]).unwrap())
        .unwrap();
    // Matches neither.
    net.publish(9, Event::new(&space, vec![900_000, 900_000, 1, 2]).unwrap())
        .unwrap();
    net.run_for_secs(60);

    let notes = net.delivered(6);
    assert_eq!(notes.len(), 3, "one per (matching disjunct, event)");
    let by_first: usize = notes.iter().filter(|n| n.sub_id == ids[0]).count();
    let by_second: usize = notes.iter().filter(|n| n.sub_id == ids[1]).count();
    assert_eq!(by_first, 2);
    assert_eq!(by_second, 1);
}

#[test]
fn replication_traffic_scales_with_factor() {
    let run = |replication: usize| {
        let mut net = PubSubNetwork::builder()
            .nodes(50)
            .net_config(NetConfig::new(46))
            .pubsub(
                PubSubConfig::paper_default()
                    .with_mapping(MappingKind::KeySpaceSplit)
                    .with_replication(replication),
            )
            .build()
            .expect("valid network configuration");
        let space = net.config().space.clone();
        for i in 0..20u64 {
            let sub = Subscription::builder(&space)
                .range("a0", i * 40_000, i * 40_000 + 30_000)
                .unwrap()
                .range("a1", 0, 999_999)
                .unwrap()
                .build()
                .unwrap();
            net.subscribe((i % 10) as usize, sub, None).unwrap();
        }
        net.run_for_secs(120);
        net.metrics().messages(TrafficClass::STATE_TRANSFER)
    };
    let r0 = run(0);
    let r1 = run(1);
    let r2 = run(2);
    assert_eq!(r0, 0);
    assert!(r1 > 0);
    assert!(
        (r2 as f64 / r1 as f64 - 2.0).abs() < 0.35,
        "r1={r1}, r2={r2}"
    );
}

#[test]
fn lease_refresh_keeps_subscriptions_alive_past_their_ttl() {
    let run = |refresh: bool| {
        let mut net = PubSubNetwork::builder()
            .nodes(40)
            .net_config(NetConfig::new(47))
            .pubsub(
                PubSubConfig::paper_default()
                    .with_mapping(MappingKind::SelectiveAttribute)
                    .with_lease_refresh(refresh),
            )
            .build()
            .expect("valid network configuration");
        let space = net.config().space.clone();
        let sub = Subscription::builder(&space)
            .range("a1", 400_000, 460_000)
            .unwrap()
            .build()
            .unwrap();
        net.subscribe(2, sub, Some(SimDuration::from_secs(100)))
            .unwrap();
        // Far beyond the original 100 s lease.
        net.run_for_secs(450);
        net.publish(8, Event::new(&space, vec![1, 430_000, 2, 3]).unwrap())
            .unwrap();
        net.run_for_secs(60);
        (
            net.delivered(2).len(),
            net.metrics().counter("requests.refresh"),
        )
    };
    let (without, refreshes_off) = run(false);
    assert_eq!(without, 0, "lease must lapse without refresh");
    assert_eq!(refreshes_off, 0);
    let (with, refreshes_on) = run(true);
    assert_eq!(with, 1, "refresh must keep the lease alive");
    assert!(
        refreshes_on >= 4,
        "expected ~9 half-lease refreshes, got {refreshes_on}"
    );
}

#[test]
fn lease_refresh_stops_after_unsubscribe() {
    let mut net = PubSubNetwork::builder()
        .nodes(40)
        .net_config(NetConfig::new(48))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_lease_refresh(true),
        )
        .build()
        .expect("valid network configuration");
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a1", 100_000, 130_000)
        .unwrap()
        .build()
        .unwrap();
    let id = net
        .subscribe(3, sub, Some(SimDuration::from_secs(100)))
        .unwrap();
    net.run_for_secs(120); // at least one refresh happened
    let refreshes_before = net.metrics().counter("requests.refresh");
    assert!(refreshes_before >= 1);
    net.unsubscribe(3, id).unwrap();
    net.run_for_secs(400);
    // The refresh cycle died with the local record.
    assert_eq!(net.metrics().counter("requests.refresh"), refreshes_before);
    net.publish(9, Event::new(&space, vec![1, 120_000, 2, 3]).unwrap())
        .unwrap();
    net.run_for_secs(60);
    assert!(net.delivered(3).is_empty());
}

//! Model-based property test of the rendezvous store: a random sequence
//! of insert / remove / purge / match operations is applied both to the
//! real [`SubscriptionStore`] and to a naive reference model, and every
//! observable must agree.
//!
//! Originally a `proptest` suite; now a plain seeded loop over
//! `cbps-rng` so the workspace tests with zero external crates.

use std::collections::HashMap;

use cbps::{
    AttributeDef, Event, EventSpace, MatchEngineKind, StoredSub, SubId, Subscription,
    SubscriptionStore,
};
use cbps_overlay::{KeyRangeSet, KeySpace, Peer};
use cbps_rng::Rng;
use cbps_sim::{SimTime, TraceId};

#[derive(Clone, Debug)]
enum Op {
    Insert {
        id: u64,
        lo: u64,
        hi: u64,
        expires: Option<u64>,
    },
    Remove {
        id: u64,
    },
    Purge {
        at: u64,
    },
    Match {
        value: u64,
        at: u64,
    },
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0u32..4) {
        0 => {
            let id = rng.gen_range(0u64..20);
            let lo = rng.gen_range(0u64..900);
            let w = rng.gen_range(0u64..100);
            let expires = if rng.gen_bool(0.5) {
                Some(rng.gen_range(1u64..500))
            } else {
                None
            };
            Op::Insert {
                id,
                lo,
                hi: (lo + w).min(999),
                expires,
            }
        }
        1 => Op::Remove {
            id: rng.gen_range(0u64..20),
        },
        2 => Op::Purge {
            at: rng.gen_range(0u64..600),
        },
        _ => Op::Match {
            value: rng.gen_range(0u64..1000),
            at: rng.gen_range(0u64..600),
        },
    }
}

/// The naive model: a map of live records with explicit expiry filtering.
#[derive(Default)]
struct Model {
    live: HashMap<u64, (u64, u64, u64)>, // id -> (lo, hi, expires_secs or MAX)
    peak: usize,
}

impl Model {
    fn purge(&mut self, at: u64) {
        self.live.retain(|_, &mut (_, _, e)| e > at);
    }
}

#[test]
fn store_matches_naive_model() {
    let mut rng = Rng::seed_from_u64(0x0005_703e_cafe);
    for case in 0..128 {
        let ops: Vec<Op> = {
            let n = rng.gen_range(1usize..120);
            (0..n).map(|_| random_op(&mut rng)).collect()
        };
        // Every engine × covering combination must satisfy the model: the
        // physical organization of the store is unobservable through its
        // public API.
        for (engine, covering) in [
            (MatchEngineKind::Counting, false),
            (MatchEngineKind::Counting, true),
            (MatchEngineKind::Sorted, false),
            (MatchEngineKind::Sorted, true),
        ] {
            check_against_model(case, engine, covering, &ops);
        }
    }
}

fn check_against_model(case: usize, engine: MatchEngineKind, covering: bool, ops: &[Op]) {
    let space = EventSpace::new(vec![AttributeDef::new("x", 1000)]);
    let keys = KeySpace::new(8);
    let mut store = SubscriptionStore::with_options(&space, engine, covering);
    let mut model = Model::default();
    let mut match_buf = Vec::new();
    // Operations are applied at non-decreasing times; track a clock so
    // purge/match times never go backwards (matching real usage).
    let mut clock = 0u64;

    for op in ops.iter().cloned() {
        match op {
            Op::Insert {
                id,
                lo,
                hi,
                expires,
            } => {
                let expires_at = expires.map(|d| clock + d);
                let sub = Subscription::builder(&space)
                    .range("x", lo, hi)
                    .unwrap()
                    .build()
                    .unwrap();
                let stored = StoredSub {
                    sub,
                    subscriber: Peer {
                        idx: 0,
                        key: keys.key(1),
                    },
                    expires: expires_at.map(SimTime::from_secs).unwrap_or(SimTime::MAX),
                    sk: KeyRangeSet::of_key(keys, keys.key(2)),
                    trace: TraceId::NONE,
                    subgroups: 0,
                };
                let fresh = store.insert(SubId(id), stored, SimTime::from_secs(clock));
                model.purge(clock);
                let model_fresh = !model.live.contains_key(&id);
                assert_eq!(
                    fresh, model_fresh,
                    "case {case}: insert freshness for id {id}"
                );
                let e = expires_at.unwrap_or(u64::MAX);
                if model_fresh {
                    model.live.insert(id, (lo, hi, e));
                    model.peak = model.peak.max(model.live.len());
                } else if let Some(rec) = model.live.get_mut(&id) {
                    rec.2 = e; // duplicate insert refreshes the expiry
                }
            }
            Op::Remove { id } => {
                let got = store.remove(SubId(id)).is_some();
                let expect = model.live.remove(&id).is_some();
                assert_eq!(got, expect, "case {case}: remove {id}");
            }
            Op::Purge { at } => {
                clock = clock.max(at);
                store.purge_expired(SimTime::from_secs(clock));
                model.purge(clock);
                assert_eq!(
                    store.len(),
                    model.live.len(),
                    "case {case}: len after purge"
                );
            }
            Op::Match { value, at } => {
                clock = clock.max(at);
                store.match_event_into(
                    &Event::new_unchecked(vec![value]),
                    SimTime::from_secs(clock),
                    &mut match_buf,
                );
                model.purge(clock);
                let mut got: Vec<u64> = match_buf.iter().map(|(id, _)| id.0).collect();
                got.sort_unstable();
                let mut expect: Vec<u64> = model
                    .live
                    .iter()
                    .filter(|(_, &(lo, hi, _))| lo <= value && value <= hi)
                    .map(|(&id, _)| id)
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "case {case}: match at value {value}");
            }
        }
    }
    // Final invariants.
    assert_eq!(store.len(), model.live.len(), "case {case}: final len");
    assert!(
        store.peak() >= model.peak,
        "case {case}: real peak may only exceed the model's (sweeps are lazier), \
         engine {engine:?} covering {covering}"
    );
}

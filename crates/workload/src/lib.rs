//! # cbps-workload — the evaluation workload of §5.1
//!
//! Synthetic workload generation for the CBPS reproduction: the paper's
//! 4-attribute integer event space, selective vs non-selective constraint
//! widths (0.1% / 3% of `ATTR_MAX`), uniform vs Zipf-distributed range
//! centers, fixed-cadence subscriptions, Poisson publications, a target
//! matching probability, and subscription expiration.
//!
//! # Examples
//!
//! ```
//! use cbps::EventSpace;
//! use cbps_workload::{WorkloadConfig, WorkloadGen};
//!
//! let space = EventSpace::paper_default();
//! let cfg = WorkloadConfig::paper_default(500, 4)
//!     .with_selective_attrs(1)
//!     .with_counts(100, 100);
//! let mut gen = WorkloadGen::new(space, cfg, 42);
//! let trace = gen.gen_trace();
//! assert_eq!(trace.sub_count(), 100);
//! assert_eq!(trace.pub_count(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod format;
pub(crate) mod generator;
pub(crate) mod trace;

pub use cbps_rng::Zipf;
pub use format::{trace_from_str, trace_to_string, ParseTraceError};
pub use generator::{WorkloadConfig, WorkloadGen};
pub use trace::{Op, OpKind, ReplayOutcome, Trace};

//! A plain-text trace format for sharing and replaying workloads.
//!
//! One operation per line:
//!
//! ```text
//! # cbps-trace v1 dims=4
//! sub <at_µs> <node> <ttl_µs|-> <lo:hi|-> … (one slot per dimension)
//! pub <at_µs> <node> <v0> <v1> …
//! ```
//!
//! The format is line-oriented and diff-friendly; `#` starts a comment.

use std::fmt::Write as _;

use cbps::{Constraint, Event, EventSpace, Subscription};
use cbps_sim::{SimDuration, SimTime};

use crate::trace::{Op, OpKind, Trace};

/// Errors produced when parsing a serialized trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes a trace for `space` into the v1 text format.
pub fn trace_to_string(space: &EventSpace, trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# cbps-trace v1 dims={}", space.dims());
    for op in trace.ops() {
        match &op.kind {
            OpKind::Subscribe { sub, ttl } => {
                let _ = write!(out, "sub {} {} ", op.at.as_micros(), op.node);
                match ttl {
                    Some(d) => {
                        let _ = write!(out, "{}", d.as_micros());
                    }
                    None => out.push('-'),
                }
                for c in sub.constraints() {
                    match c {
                        Some(c) => {
                            let _ = write!(out, " {}:{}", c.lo(), c.hi());
                        }
                        None => out.push_str(" -"),
                    }
                }
                out.push('\n');
            }
            OpKind::Publish { event } => {
                let _ = write!(out, "pub {} {}", op.at.as_micros(), op.node);
                for &v in event.values() {
                    let _ = write!(out, " {v}");
                }
                out.push('\n');
            }
        }
    }
    out
}

/// Parses a v1 text trace for `space`.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed lines, dimension mismatches,
/// or out-of-domain values.
pub fn trace_from_str(space: &EventSpace, text: &str) -> Result<Trace, ParseTraceError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let err = |message: String| ParseTraceError {
            line: line_no,
            message,
        };
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let kind = fields.next().expect("non-empty line has a first field");
        let at = fields
            .next()
            .ok_or_else(|| err("missing timestamp".into()))?
            .parse::<u64>()
            .map_err(|e| err(format!("bad timestamp: {e}")))?;
        let node = fields
            .next()
            .ok_or_else(|| err("missing node".into()))?
            .parse::<usize>()
            .map_err(|e| err(format!("bad node: {e}")))?;
        match kind {
            "sub" => {
                let ttl_field = fields.next().ok_or_else(|| err("missing ttl".into()))?;
                let ttl = if ttl_field == "-" {
                    None
                } else {
                    Some(SimDuration::from_micros(
                        ttl_field
                            .parse::<u64>()
                            .map_err(|e| err(format!("bad ttl: {e}")))?,
                    ))
                };
                let mut constraints = Vec::with_capacity(space.dims());
                for slot in fields {
                    if slot == "-" {
                        constraints.push(None);
                    } else {
                        let (lo, hi) = slot
                            .split_once(':')
                            .ok_or_else(|| err(format!("bad constraint {slot:?}")))?;
                        let lo = lo.parse::<u64>().map_err(|e| err(format!("bad lo: {e}")))?;
                        let hi = hi.parse::<u64>().map_err(|e| err(format!("bad hi: {e}")))?;
                        constraints.push(Some(
                            Constraint::range(lo, hi)
                                .map_err(|e| err(format!("bad range: {e}")))?,
                        ));
                    }
                }
                let sub = Subscription::from_constraints(space, constraints)
                    .map_err(|e| err(format!("bad subscription: {e}")))?;
                ops.push(Op {
                    at: SimTime::from_micros(at),
                    node,
                    kind: OpKind::Subscribe { sub, ttl },
                });
            }
            "pub" => {
                let values: Result<Vec<u64>, _> = fields.map(str::parse::<u64>).collect();
                let values = values.map_err(|e| err(format!("bad value: {e}")))?;
                let event =
                    Event::new(space, values).map_err(|e| err(format!("bad event: {e}")))?;
                ops.push(Op {
                    at: SimTime::from_micros(at),
                    node,
                    kind: OpKind::Publish { event },
                });
            }
            other => return Err(err(format!("unknown op kind {other:?}"))),
        }
    }
    Ok(Trace::new(ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGen};

    #[test]
    fn round_trip_preserves_every_operation() {
        let space = EventSpace::paper_default();
        let cfg = WorkloadConfig::paper_default(50, 4)
            .with_counts(40, 40)
            .with_sub_ttl(Some(SimDuration::from_secs(100)));
        let mut gen = WorkloadGen::new(space.clone(), cfg, 5);
        let trace = gen.gen_trace();

        let text = trace_to_string(&space, &trace);
        let back = trace_from_str(&space, &text).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.ops().iter().zip(back.ops()) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.node, b.node);
            match (&a.kind, &b.kind) {
                (
                    OpKind::Subscribe { sub: s1, ttl: t1 },
                    OpKind::Subscribe { sub: s2, ttl: t2 },
                ) => {
                    assert_eq!(s1, s2);
                    assert_eq!(t1, t2);
                }
                (OpKind::Publish { event: e1 }, OpKind::Publish { event: e2 }) => {
                    assert_eq!(e1, e2);
                }
                _ => panic!("op kind changed across round trip"),
            }
        }
    }

    #[test]
    fn wildcards_and_no_ttl_round_trip() {
        let space = EventSpace::paper_default();
        let sub = Subscription::builder(&space)
            .range("a2", 5, 10)
            .unwrap()
            .build()
            .unwrap();
        let trace = Trace::new(vec![Op {
            at: SimTime::from_millis(1500),
            node: 3,
            kind: OpKind::Subscribe {
                sub: sub.clone(),
                ttl: None,
            },
        }]);
        let text = trace_to_string(&space, &trace);
        assert!(text.contains("sub 1500000 3 - - - 5:10 -"));
        let back = trace_from_str(&space, &text).unwrap();
        match &back.ops()[0].kind {
            OpKind::Subscribe { sub: s, ttl } => {
                assert_eq!(s, &sub);
                assert_eq!(*ttl, None);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let space = EventSpace::paper_default();
        let err = trace_from_str(&space, "# ok\nbogus 1 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown op kind"));

        let err = trace_from_str(&space, "pub 5 0 1 2 3\n").unwrap_err();
        assert!(err.message.contains("bad event"));

        let err = trace_from_str(&space, "sub x 0 - - - - -\n").unwrap_err();
        assert!(err.message.contains("bad timestamp"));

        let err = trace_from_str(&space, "sub 1 0 - 9:3 - - -\n").unwrap_err();
        assert!(err.message.contains("bad range"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let space = EventSpace::paper_default();
        let trace = trace_from_str(&space, "# header\n\n  \npub 1 0 1 2 3 4\n").unwrap();
        assert_eq!(trace.len(), 1);
    }
}

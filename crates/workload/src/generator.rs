//! The §5.1 workload generator.
//!
//! "Experiments are conducted by generating and replaying subscriptions and
//! publications defined over a 4 attribute event space. … each constraint
//! in a subscription spans an independently chosen range that is generated
//! as a random number between 1 and X, wherein X is 3% of ATTR_MAX for
//! non-selective attributes and 0.1% for selective ones. … Ranges are
//! centered around a value that is chosen randomly following a uniform
//! distribution for non-selective attributes and a Zipf distribution for
//! selective ones. … subscriptions are injected at a regular rate of one
//! each 5s, while publications follow a Poisson process with the average of
//! 5s … matching probability is 0.5."

use cbps::{Event, EventSpace, Subscription};
use cbps_rng::{Rng, Zipf};
use cbps_sim::{SimDuration, SimTime};

use crate::trace::{Op, OpKind, Trace};

/// Knobs of the paper's synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of nodes issuing operations (uniformly chosen per op).
    pub nodes: usize,
    /// Number of subscriptions to generate.
    pub subscriptions: usize,
    /// Number of publications to generate.
    pub publications: usize,
    /// Fixed inter-subscription period (paper: 5 s).
    pub sub_period: SimDuration,
    /// Mean of the exponential inter-publication time (paper: 5 s).
    pub pub_mean: SimDuration,
    /// Probability that a publication is generated to match at least one
    /// live subscription (paper: 0.5).
    pub matching_probability: f64,
    /// Subscription expiration; `None` = subscriptions never expire.
    pub sub_ttl: Option<SimDuration>,
    /// Which attributes are selective (length must equal the space's `d`).
    pub selective: Vec<bool>,
    /// Maximal constraint width as a fraction of the domain for
    /// non-selective attributes (paper: 3%).
    pub non_selective_frac: f64,
    /// Maximal constraint width for selective attributes (paper: 0.1%).
    pub selective_frac: f64,
    /// Zipf exponent for selective-attribute centers. The paper leaves the
    /// exponent unstated; 0.5 keeps the skew visible without letting a
    /// single hotspot key dominate the per-node maxima (EXPERIMENTS.md
    /// discusses the sensitivity).
    pub zipf_exponent: f64,
    /// Fraction of each subscription's dimensions left unconstrained
    /// (0.0 = the paper's fully-specified subscriptions).
    pub wildcard_probability: f64,
    /// Temporal locality of matching publications (§4.3.2: "consecutive
    /// events exhibit temporal locality"): consecutive matching events are
    /// seeded from the same subscription for streaks of this mean length.
    /// 1 = independent draws.
    pub seed_streak: u64,
    /// Number of extra flash-crowd publications injected as a mid-run
    /// burst (0 = no burst). Burst events draw their selective-attribute
    /// values from a Zipf distribution with exponent [`flash_alpha`],
    /// concentrating load on the rendezvous nodes of the hot values. The
    /// burst is appended after the base trace is generated, so the base
    /// operation sequence for a given seed is identical with and without
    /// it.
    ///
    /// [`flash_alpha`]: WorkloadConfig::flash_alpha
    pub flash_crowd: usize,
    /// Zipf exponent of the flash-crowd burst's attribute values. Higher
    /// values concentrate the burst on fewer hot keys (default 1.1).
    pub flash_alpha: f64,
    /// Time of the first operation.
    pub start: SimTime,
}

impl WorkloadConfig {
    /// The paper's defaults for a `d`-dimensional space with no selective
    /// attributes.
    pub fn paper_default(nodes: usize, d: usize) -> Self {
        WorkloadConfig {
            nodes,
            subscriptions: 1000,
            publications: 1000,
            sub_period: SimDuration::from_secs(5),
            pub_mean: SimDuration::from_secs(5),
            matching_probability: 0.5,
            sub_ttl: None,
            selective: vec![false; d],
            non_selective_frac: 0.03,
            selective_frac: 0.001,
            zipf_exponent: 0.5,
            wildcard_probability: 0.0,
            seed_streak: 1,
            flash_crowd: 0,
            flash_alpha: 1.1,
            start: SimTime::from_secs(1),
        }
    }

    /// Marks the first `k` attributes selective.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the dimension count.
    pub fn with_selective_attrs(mut self, k: usize) -> Self {
        assert!(
            k <= self.selective.len(),
            "more selective attributes than dimensions"
        );
        for (i, flag) in self.selective.iter_mut().enumerate() {
            *flag = i < k;
        }
        self
    }

    /// Sets the operation counts.
    pub fn with_counts(mut self, subscriptions: usize, publications: usize) -> Self {
        self.subscriptions = subscriptions;
        self.publications = publications;
        self
    }

    /// Sets the matching probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_matching_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "matching probability {p} out of [0, 1]"
        );
        self.matching_probability = p;
        self
    }

    /// Sets the subscription TTL.
    pub fn with_sub_ttl(mut self, ttl: Option<SimDuration>) -> Self {
        self.sub_ttl = ttl;
        self
    }

    /// Sets the per-dimension wildcard probability. The paper's
    /// subscriptions constrain every attribute (0.0); non-zero values
    /// model partially-specified subscriptions, which is also what makes
    /// subscription covering bite — a broadly-constrained subscription
    /// can then subsume narrower ones.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_wildcard_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "wildcard probability {p} out of [0, 1]"
        );
        self.wildcard_probability = p;
        self
    }

    /// Sets the mean matching-event streak length (temporal locality).
    ///
    /// # Panics
    ///
    /// Panics if `streak` is zero.
    pub fn with_seed_streak(mut self, streak: u64) -> Self {
        assert!(streak > 0, "streak length must be positive");
        self.seed_streak = streak;
        self
    }

    /// Sets the flash-crowd burst size and Zipf exponent.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    pub fn with_flash_crowd(mut self, count: usize, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "flash-crowd exponent {alpha} must be positive"
        );
        self.flash_crowd = count;
        self.flash_alpha = alpha;
        self
    }
}

/// Generator producing subscriptions, events and full timed traces.
#[derive(Debug)]
pub struct WorkloadGen {
    space: EventSpace,
    cfg: WorkloadConfig,
    rng: Rng,
    /// Lazily-built Zipf table per selective attribute.
    zipfs: Vec<Option<Zipf>>,
}

impl WorkloadGen {
    /// Creates a generator with its own deterministic RNG.
    ///
    /// # Panics
    ///
    /// Panics if the selectivity flags' length differs from the space's
    /// dimensionality or the config's node count is zero.
    pub fn new(space: EventSpace, cfg: WorkloadConfig, seed: u64) -> Self {
        assert_eq!(
            cfg.selective.len(),
            space.dims(),
            "selectivity flags must cover every dimension"
        );
        assert!(cfg.nodes > 0, "workload needs at least one node");
        let zipfs = vec![None; space.dims()];
        WorkloadGen {
            space,
            cfg,
            rng: Rng::seed_from_u64(seed),
            zipfs,
        }
    }

    /// The event space.
    pub fn space(&self) -> &EventSpace {
        &self.space
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Generates one subscription per §5.1: per-dimension widths
    /// `~U[1, X_i]`, centers uniform or Zipf by selectivity.
    pub fn gen_subscription(&mut self) -> Subscription {
        loop {
            let mut constraints = Vec::with_capacity(self.space.dims());
            for i in 0..self.space.dims() {
                if self.cfg.wildcard_probability > 0.0
                    && self.rng.f64() < self.cfg.wildcard_probability
                {
                    constraints.push(None);
                    continue;
                }
                let size = self.space.attr(i).size();
                let frac = if self.cfg.selective[i] {
                    self.cfg.selective_frac
                } else {
                    self.cfg.non_selective_frac
                };
                let max_width = ((size as f64 * frac) as u64).max(1);
                let width = self.rng.gen_range(1..=max_width);
                let center = if self.cfg.selective[i] {
                    let zipf = {
                        // Split borrows: build table first, then sample.
                        if self.zipfs[i].is_none() {
                            let n = self.space.attr(i).size();
                            self.zipfs[i] = Some(Zipf::new(n, self.cfg.zipf_exponent));
                        }
                        self.zipfs[i].as_ref().expect("built above")
                    };
                    zipf.sample(&mut self.rng) - 1
                } else {
                    self.rng.gen_range(0..size)
                };
                let lo = center.saturating_sub(width / 2);
                let hi = (center + width.div_ceil(2)).min(size - 1);
                constraints.push(Some(
                    cbps::Constraint::range(lo, hi).expect("lo <= hi by construction"),
                ));
            }
            // All-wildcard draws (possible when wildcard_probability > 0)
            // are invalid subscriptions: redraw.
            if constraints.iter().any(Option::is_some) {
                return Subscription::from_constraints(&self.space, constraints)
                    .expect("generated constraints are valid");
            }
        }
    }

    /// Generates a uniformly random event.
    pub fn gen_random_event(&mut self) -> Event {
        let values = (0..self.space.dims())
            .map(|i| self.rng.gen_range(0..self.space.attr(i).size()))
            .collect();
        Event::new_unchecked(values)
    }

    /// Generates an event guaranteed to match `sub` (uniform within each
    /// constraint; uniform over the domain on wildcards).
    pub fn gen_matching_event(&mut self, sub: &Subscription) -> Event {
        let values = (0..self.space.dims())
            .map(|i| match sub.constraint(i) {
                Some(c) => self.rng.gen_range(c.lo()..=c.hi()),
                None => self.rng.gen_range(0..self.space.attr(i).size()),
            })
            .collect();
        Event::new_unchecked(values)
    }

    /// Generates the full timed trace: subscriptions at a fixed cadence,
    /// publications as a Poisson process, randomly interleaved; each
    /// publication matches a live subscription with the configured
    /// probability.
    pub fn gen_trace(&mut self) -> Trace {
        let mut ops = Vec::with_capacity(self.cfg.subscriptions + self.cfg.publications);

        // Subscription issue times: fixed cadence.
        let mut sub_times = Vec::with_capacity(self.cfg.subscriptions);
        let mut t = self.cfg.start;
        for _ in 0..self.cfg.subscriptions {
            sub_times.push(t);
            t += self.cfg.sub_period;
        }
        // Publication issue times: Poisson process.
        let mut pub_times = Vec::with_capacity(self.cfg.publications);
        let mut t = self.cfg.start;
        for _ in 0..self.cfg.publications {
            let gap = self.rng.exp(self.cfg.pub_mean.as_secs_f64());
            t += SimDuration::from_secs_f64(gap);
            pub_times.push(t);
        }

        // Generate in global time order so "live subscriptions" are exactly
        // those already issued and not yet expired.
        let mut live: Vec<(SimTime, Subscription)> = Vec::new(); // (expiry, sub)
                                                                 // Temporal-locality state: the current seed subscription and how
                                                                 // many more matching events it should still produce.
        let mut streak: Option<(Subscription, u64)> = None;
        let (mut si, mut pi) = (0, 0);
        while si < sub_times.len() || pi < pub_times.len() {
            let take_sub = match (sub_times.get(si), pub_times.get(pi)) {
                (Some(st), Some(pt)) => st <= pt,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_sub {
                let at = sub_times[si];
                si += 1;
                let sub = self.gen_subscription();
                let expiry = self.cfg.sub_ttl.map(|d| at + d).unwrap_or(SimTime::MAX);
                live.push((expiry, sub.clone()));
                ops.push(Op {
                    at,
                    node: self.rng.gen_range(0..self.cfg.nodes),
                    kind: OpKind::Subscribe {
                        sub,
                        ttl: self.cfg.sub_ttl,
                    },
                });
            } else {
                let at = pub_times[pi];
                pi += 1;
                // Without TTLs every expiry is `SimTime::MAX`, so the
                // retain is an identity scan — O(subs) per publication,
                // quadratic over a trace. Skipping it leaves `live` and
                // the RNG sequence untouched.
                if self.cfg.sub_ttl.is_some() {
                    live.retain(|(expiry, _)| *expiry > at);
                }
                let event = if !live.is_empty() && self.rng.f64() < self.cfg.matching_probability {
                    let seed = match streak.take() {
                        Some((sub, left)) if left > 0 => {
                            streak = Some((sub.clone(), left - 1));
                            sub
                        }
                        _ => {
                            let k = self.rng.gen_range(0..live.len());
                            let sub = live[k].1.clone();
                            if self.cfg.seed_streak > 1 {
                                streak = Some((sub.clone(), self.cfg.seed_streak - 1));
                            }
                            sub
                        }
                    };
                    self.gen_matching_event(&seed)
                } else {
                    self.gen_random_event()
                };
                ops.push(Op {
                    at,
                    node: self.rng.gen_range(0..self.cfg.nodes),
                    kind: OpKind::Publish { event },
                });
            }
        }

        // Flash-crowd burst: appended after the base trace so the base
        // RNG sequence — and therefore the base operations — are
        // byte-identical for the same seed whether or not a burst is
        // requested. `Trace::new` re-sorts by time, folding the burst
        // into the middle of the run.
        if self.cfg.flash_crowd > 0 {
            let end = ops.last().map(|o| o.at).unwrap_or(self.cfg.start);
            let span = end.saturating_since(self.cfg.start);
            let mid = self.cfg.start + SimDuration::from_secs_f64(span.as_secs_f64() / 2.0);
            let gap = SimDuration::from_millis(50);
            // Zipf tables over each attribute's domain at the burst
            // exponent; hot dimensions are the selective ones (falling
            // back to dimension 0 when none is marked selective).
            let hot: Vec<bool> = if self.cfg.selective.iter().any(|&s| s) {
                self.cfg.selective.clone()
            } else {
                let mut v = vec![false; self.space.dims()];
                v[0] = true;
                v
            };
            let flash_zipfs: Vec<Option<Zipf>> = (0..self.space.dims())
                .map(|i| hot[i].then(|| Zipf::new(self.space.attr(i).size(), self.cfg.flash_alpha)))
                .collect();
            let mut at = mid;
            for _ in 0..self.cfg.flash_crowd {
                let values = (0..self.space.dims())
                    .map(|i| match &flash_zipfs[i] {
                        Some(z) => z.sample(&mut self.rng) - 1,
                        None => self.rng.gen_range(0..self.space.attr(i).size()),
                    })
                    .collect();
                ops.push(Op {
                    at,
                    node: self.rng.gen_range(0..self.cfg.nodes),
                    kind: OpKind::Publish {
                        event: Event::new_unchecked(values),
                    },
                });
                at += gap;
            }
        }
        Trace::new(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(selective: usize) -> WorkloadGen {
        let space = EventSpace::paper_default();
        let cfg = WorkloadConfig::paper_default(100, 4)
            .with_selective_attrs(selective)
            .with_counts(200, 200);
        WorkloadGen::new(space, cfg, 42)
    }

    #[test]
    fn subscription_widths_respect_selectivity() {
        let mut g = gen(1);
        let max_sel = (1_000_001.0 * 0.001) as u64 + 1;
        let max_non = (1_000_001.0 * 0.03) as u64 + 1;
        for _ in 0..200 {
            let sub = g.gen_subscription();
            let c0 = sub.constraint(0).unwrap();
            let c1 = sub.constraint(1).unwrap();
            assert!(c0.span() <= max_sel + 1, "selective span {}", c0.span());
            assert!(c1.span() <= max_non + 1, "non-selective span {}", c1.span());
        }
    }

    #[test]
    fn selective_centers_are_skewed() {
        let space = EventSpace::paper_default();
        let mut cfg = WorkloadConfig::paper_default(100, 4).with_selective_attrs(1);
        cfg.zipf_exponent = 1.2; // strong skew so the shift is unmistakable
        let mut g = WorkloadGen::new(space, cfg, 42);
        // Zipf-centered constraints concentrate near value 0; uniform ones
        // have mean ≈ 500_000.
        let (mut sel_acc, mut non_acc) = (0u64, 0u64);
        let n = 300;
        for _ in 0..n {
            let sub = g.gen_subscription();
            sel_acc += sub.constraint(0).unwrap().lo();
            non_acc += sub.constraint(1).unwrap().lo();
        }
        let sel_mean = sel_acc / n;
        let non_mean = non_acc / n;
        assert!(
            sel_mean < non_mean / 4,
            "zipf mean {sel_mean} vs uniform mean {non_mean}"
        );
    }

    #[test]
    fn matching_events_match() {
        let mut g = gen(0);
        for _ in 0..100 {
            let sub = g.gen_subscription();
            let e = g.gen_matching_event(&sub);
            assert!(sub.matches(&e));
        }
    }

    #[test]
    fn trace_shape() {
        let mut g = gen(0);
        let trace = g.gen_trace();
        assert_eq!(trace.sub_count(), 200);
        assert_eq!(trace.pub_count(), 200);
        // Fixed cadence: last subscription at start + 199 * 5s.
        let subs: Vec<SimTime> = trace
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Subscribe { .. }))
            .map(|o| o.at)
            .collect();
        assert_eq!(subs[0], SimTime::from_secs(1));
        assert_eq!(
            subs[199],
            SimTime::from_secs(1) + SimDuration::from_secs(995)
        );
        // Poisson publications average ≈ 5 s apart.
        let pubs: Vec<SimTime> = trace
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Publish { .. }))
            .map(|o| o.at)
            .collect();
        let total = pubs.last().unwrap().saturating_since(SimTime::from_secs(1));
        let mean_gap = total.as_secs_f64() / 199.0;
        assert!(
            (2.5..10.0).contains(&mean_gap),
            "mean publication gap {mean_gap}"
        );
    }

    #[test]
    fn matching_probability_controls_hit_rate() {
        // With p = 1 every publication matches at least one live
        // subscription at generation time.
        let space = EventSpace::paper_default();
        let cfg = WorkloadConfig::paper_default(10, 4)
            .with_counts(50, 100)
            .with_matching_probability(1.0);
        let mut g = WorkloadGen::new(space, cfg, 7);
        let trace = g.gen_trace();
        let mut live: Vec<Subscription> = Vec::new();
        let mut matched = 0;
        let mut pubs = 0;
        for op in trace.ops() {
            match &op.kind {
                OpKind::Subscribe { sub, .. } => live.push(sub.clone()),
                OpKind::Publish { event } => {
                    pubs += 1;
                    if live.iter().any(|s| s.matches(event)) {
                        matched += 1;
                    }
                }
            }
        }
        // Publications before the first subscription cannot match.
        assert!(
            matched as f64 >= pubs as f64 * 0.8,
            "{matched}/{pubs} matched"
        );
    }

    #[test]
    fn wildcards_generated_when_requested() {
        let space = EventSpace::paper_default();
        let mut cfg = WorkloadConfig::paper_default(10, 4);
        cfg.wildcard_probability = 0.5;
        let mut g = WorkloadGen::new(space, cfg, 9);
        let mut wildcards = 0;
        for _ in 0..100 {
            let sub = g.gen_subscription();
            wildcards += sub.dims() - sub.constrained_count();
            assert!(sub.constrained_count() >= 1);
        }
        assert!(wildcards > 100, "expected ≈ 200 wildcards, got {wildcards}");
    }

    #[test]
    fn flash_crowd_extends_without_perturbing_base() {
        let space = EventSpace::paper_default();
        let base_cfg = WorkloadConfig::paper_default(20, 4)
            .with_selective_attrs(1)
            .with_counts(50, 100);
        let base = WorkloadGen::new(space.clone(), base_cfg.clone(), 11).gen_trace();
        let burst_cfg = base_cfg.with_flash_crowd(80, 1.1);
        let burst = WorkloadGen::new(space, burst_cfg, 11).gen_trace();

        assert_eq!(burst.pub_count(), base.pub_count() + 80);
        assert_eq!(burst.sub_count(), base.sub_count());
        // Every base op is present, unchanged, in the burst trace (the
        // burst only adds publications).
        let render = |t: &Trace| {
            t.ops()
                .iter()
                .map(|o| format!("{o:?}"))
                .collect::<std::collections::BTreeSet<_>>()
        };
        let base_set = render(&base);
        let burst_set = render(&burst);
        assert!(base_set.is_subset(&burst_set));
        // The burst lands mid-run, not at the tail.
        let extra: Vec<_> = burst_set.difference(&base_set).collect();
        assert_eq!(extra.len(), 80);
        assert!(burst.end_time() <= base.end_time() + SimDuration::from_secs(5));
    }

    #[test]
    fn flash_crowd_values_are_skewed() {
        let space = EventSpace::paper_default();
        let cfg = WorkloadConfig::paper_default(20, 4)
            .with_selective_attrs(1)
            .with_counts(10, 10)
            .with_flash_crowd(300, 1.2);
        let base = WorkloadGen::new(space.clone(), cfg.clone(), 3).gen_trace();
        // Burst events concentrate dimension-0 values near zero compared
        // with the uniform mean of ~500k.
        let mut acc = 0u64;
        let mut n = 0u64;
        for op in base.ops() {
            if let OpKind::Publish { event } = &op.kind {
                acc += event.value(0);
                n += 1;
            }
        }
        let _ = space;
        assert!(n >= 300);
        assert!(acc / n < 250_000, "mean dim-0 value {}", acc / n);
    }

    #[test]
    fn determinism() {
        let a = {
            let mut g = gen(1);
            format!(
                "{:?}",
                g.gen_trace().ops().iter().take(5).collect::<Vec<_>>()
            )
        };
        let b = {
            let mut g = gen(1);
            format!(
                "{:?}",
                g.gen_trace().ops().iter().take(5).collect::<Vec<_>>()
            )
        };
        assert_eq!(a, b);
    }
}

//! Timed operation traces and their replay against a network.

use cbps::{Event, Oracle, OverlayBackend, PubSubNetwork, SubId, Subscription};
use cbps_sim::{SimDuration, SimTime};

/// One workload operation.
#[derive(Clone, Debug)]
pub enum OpKind {
    /// Issue a subscription with an optional TTL.
    Subscribe {
        /// The subscription.
        sub: Subscription,
        /// Expiry offset; `None` = never expires.
        ttl: Option<SimDuration>,
    },
    /// Publish an event.
    Publish {
        /// The event.
        event: Event,
    },
}

/// A timestamped operation issued by a node.
#[derive(Clone, Debug)]
pub struct Op {
    /// Simulated issue time.
    pub at: SimTime,
    /// Issuing node index.
    pub node: usize,
    /// What to do.
    pub kind: OpKind,
}

/// A time-ordered sequence of operations.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// Builds a trace from operations, sorting them by time (stable, so
    /// equal-time operations keep their construction order).
    pub fn new(mut ops: Vec<Op>) -> Self {
        ops.sort_by_key(|op| op.at);
        Trace { ops }
    }

    /// The operations in time order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of subscriptions in the trace.
    pub fn sub_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Subscribe { .. }))
            .count()
    }

    /// Number of publications in the trace.
    pub fn pub_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Publish { .. }))
            .count()
    }

    /// The time of the last operation ([`SimTime::ZERO`] when empty).
    pub fn end_time(&self) -> SimTime {
        self.ops.last().map(|o| o.at).unwrap_or(SimTime::ZERO)
    }

    /// Replays the trace against a network: advances the clock to each
    /// operation's time and issues it from its node. Returns an [`Oracle`]
    /// loaded with the ground truth (and the ids assigned along the way).
    ///
    /// The caller should afterwards run the network past the last delivery
    /// (e.g. [`PubSubNetwork::run_for_secs`]) before comparing.
    pub fn replay<B: OverlayBackend>(&self, net: &mut PubSubNetwork<B>) -> ReplayOutcome {
        let mut oracle = Oracle::new();
        let mut sub_ids = Vec::new();
        let mut event_ids = Vec::new();
        for op in &self.ops {
            net.run_until(op.at);
            match &op.kind {
                OpKind::Subscribe { sub, ttl } => {
                    let id = net
                        .subscribe(op.node, sub.clone(), *ttl)
                        .expect("trace operations target valid nodes");
                    let expires = match ttl {
                        Some(d) => op.at + *d,
                        None => SimTime::MAX,
                    };
                    oracle.add_sub(id, sub.clone(), op.at, expires);
                    sub_ids.push(id);
                }
                OpKind::Publish { event } => {
                    let id = net
                        .publish(op.node, event.clone())
                        .expect("trace operations target valid nodes");
                    oracle.add_pub(id, event.clone(), op.at);
                    event_ids.push(id);
                }
            }
        }
        ReplayOutcome {
            oracle,
            sub_ids,
            event_ids,
        }
    }
}

/// What a replay produced: the ground-truth oracle plus the ids assigned.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Ground-truth matcher loaded with every operation.
    pub oracle: Oracle,
    /// Subscription ids in issue order.
    pub sub_ids: Vec<SubId>,
    /// Event ids in publish order.
    pub event_ids: Vec<cbps::EventId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbps::{EventSpace, PubSubConfig, PubSubNetwork};

    #[test]
    fn trace_sorts_and_counts() {
        let space = EventSpace::paper_default();
        let sub = Subscription::builder(&space)
            .range("a0", 0, 10)
            .unwrap()
            .build()
            .unwrap();
        let event = Event::new(&space, vec![5, 0, 0, 0]).unwrap();
        let trace = Trace::new(vec![
            Op {
                at: SimTime::from_secs(10),
                node: 1,
                kind: OpKind::Publish { event },
            },
            Op {
                at: SimTime::from_secs(5),
                node: 0,
                kind: OpKind::Subscribe { sub, ttl: None },
            },
        ]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.sub_count(), 1);
        assert_eq!(trace.pub_count(), 1);
        assert_eq!(trace.ops()[0].at, SimTime::from_secs(5));
        assert_eq!(trace.end_time(), SimTime::from_secs(10));
    }

    #[test]
    fn replay_drives_network_and_oracle() {
        let mut net = PubSubNetwork::builder()
            .nodes(20)
            .seed(3)
            .pubsub(PubSubConfig::paper_default())
            .build()
            .expect("valid network configuration");
        let space = net.config().space.clone();
        let sub = Subscription::builder(&space)
            .range("a0", 0, 999_999)
            .unwrap()
            .range("a1", 100, 200)
            .unwrap()
            .build()
            .unwrap();
        let hit = Event::new(&space, vec![1, 150, 2, 3]).unwrap();
        let trace = Trace::new(vec![
            Op {
                at: SimTime::from_secs(1),
                node: 0,
                kind: OpKind::Subscribe { sub, ttl: None },
            },
            Op {
                at: SimTime::from_secs(60),
                node: 5,
                kind: OpKind::Publish { event: hit },
            },
        ]);
        let outcome = trace.replay(&mut net);
        net.run_for_secs(60);
        let expected = outcome.oracle.expected();
        assert_eq!(expected.len(), 1);
        let got: Vec<_> = net
            .delivered(0)
            .iter()
            .map(|n| (n.sub_id, n.event_id))
            .collect();
        assert_eq!(got.len(), 1);
        assert!(expected.contains(&got[0]));
    }
}

//! The portability demonstration: the same pub/sub layer, workload and
//! seeds over Chord and over Pastry must produce the same logical
//! deliveries — only the routing paths (and hence message counts) differ.

use std::collections::BTreeSet;

use cbps::{EventId, MappingKind, Primitive, PubSubConfig, PubSubNetwork, SubId};
use cbps_overlay::{KeyRange, KeyRangeSet, RingView};
use cbps_pastry::{
    build_pastry_stable, common_prefix_len, PastryApp, PastryConfig, PastryPubSubNetwork, PastrySvc,
};
use cbps_sim::{NetConfig, TraceId, TrafficClass};
use cbps_workload::{OpKind, WorkloadConfig, WorkloadGen};

/// Replays the identical workload over both overlays and compares the
/// delivered (sub, event) sets.
fn cross_overlay_check(kind: MappingKind, primitive: Primitive, seed: u64) {
    let nodes = 50;
    let pubsub = PubSubConfig::paper_default()
        .with_mapping(kind)
        .with_primitive(primitive);

    let mut chord = PubSubNetwork::builder()
        .nodes(nodes)
        .net_config(NetConfig::new(seed))
        .pubsub(pubsub.clone())
        .build()
        .expect("valid network configuration");
    let mut pastry = PastryPubSubNetwork::builder()
        .nodes(nodes)
        .seed(seed)
        .pubsub(pubsub)
        .build()
        .expect("valid network configuration");

    // Same ring: the builders share key assignment.
    assert_eq!(
        chord.ring().peers(),
        pastry.ring().peers(),
        "overlays must see the same ring for a like-for-like comparison"
    );

    let wl = WorkloadConfig::paper_default(nodes, 4)
        .with_counts(30, 60)
        .with_matching_probability(0.8);
    let mut gen = WorkloadGen::new(chord.config().space.clone(), wl, seed);
    let trace = gen.gen_trace();

    // Subscriptions first, publications after a settling gap, on both.
    for op in trace.ops() {
        if let OpKind::Subscribe { sub, ttl } = &op.kind {
            chord.subscribe(op.node, sub.clone(), *ttl).unwrap();
            pastry.subscribe(op.node, sub.clone(), *ttl).unwrap();
        }
    }
    chord.run_for_secs(120);
    pastry.run_for_secs(120);
    for op in trace.ops() {
        if let OpKind::Publish { event } = &op.kind {
            chord.publish(op.node, event.clone()).unwrap();
            pastry.publish(op.node, event.clone()).unwrap();
        }
    }
    chord.run_for_secs(300);
    pastry.run_for_secs(300);

    let collect = |delivered: &dyn Fn(usize) -> Vec<(SubId, EventId)>| {
        let mut set: BTreeSet<(SubId, EventId)> = BTreeSet::new();
        for i in 0..nodes {
            for pair in delivered(i) {
                assert!(set.insert(pair), "duplicate delivery {pair:?}");
            }
        }
        set
    };
    let chord_set = collect(&|i| {
        chord
            .delivered(i)
            .iter()
            .map(|n| (n.sub_id, n.event_id))
            .collect()
    });
    let pastry_set = collect(&|i| {
        pastry
            .delivered(i)
            .iter()
            .map(|n| (n.sub_id, n.event_id))
            .collect()
    });
    assert!(!chord_set.is_empty(), "workload produced no deliveries");
    assert_eq!(
        chord_set, pastry_set,
        "{kind}/{primitive:?}: overlays disagree on delivered notifications"
    );
}

#[test]
fn same_deliveries_mapping1_mcast() {
    cross_overlay_check(MappingKind::AttributeSplit, Primitive::MCast, 71);
}

#[test]
fn same_deliveries_mapping2_unicast() {
    cross_overlay_check(MappingKind::KeySpaceSplit, Primitive::Unicast, 72);
}

#[test]
fn same_deliveries_mapping3_mcast() {
    cross_overlay_check(MappingKind::SelectiveAttribute, Primitive::MCast, 73);
}

#[test]
fn same_deliveries_mapping3_walk() {
    cross_overlay_check(MappingKind::SelectiveAttribute, Primitive::Walk, 74);
}

// ---------------------------------------------------------------------
// Pastry overlay-level properties.
// ---------------------------------------------------------------------

#[derive(Default)]
struct Probe {
    delivered: Vec<(u64, u32)>,
}

impl PastryApp for Probe {
    type Payload = u64;
    type Timer = ();
    fn on_deliver(
        &mut self,
        payload: u64,
        d: cbps_overlay::Delivery,
        _svc: &mut PastrySvc<'_, '_, u64, ()>,
    ) {
        self.delivered.push((payload, d.hops));
    }
}

fn probe_net(
    n: usize,
    seed: u64,
) -> (
    cbps_sim::Simulator<cbps_pastry::PastryNode<Probe>>,
    RingView,
    PastryConfig,
) {
    let cfg = PastryConfig::paper_default();
    let apps: Vec<Probe> = (0..n).map(|_| Probe::default()).collect();
    let (sim, ring) = build_pastry_stable(NetConfig::new(seed), cfg, apps);
    (sim, ring, cfg)
}

#[test]
fn pastry_routing_reaches_oracle_successor() {
    let (mut sim, ring, cfg) = probe_net(60, 81);
    let space = cfg.space;
    for (i, probe) in [0u64, 17, 4095, 8191, 3000, 6000].iter().enumerate() {
        let key = space.key(*probe);
        let expect = ring.successor(key).idx;
        sim.with_node(i % 60, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                use cbps_overlay::OverlayServices;
                svc.send(key, TrafficClass::OTHER, *probe, TraceId::NONE);
            })
        });
        sim.run();
        let holders: Vec<usize> = sim
            .nodes()
            .filter(|(_, n)| n.app().delivered.iter().any(|(p, _)| p == probe))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(holders, vec![expect], "key {probe}");
    }
}

#[test]
fn pastry_prefix_routing_is_logarithmic() {
    let (mut sim, _ring, cfg) = probe_net(128, 82);
    let space = cfg.space;
    for i in 0..500u64 {
        let src = (i % 128) as usize;
        let key = space.key((i * 131 + 7) % space.size());
        sim.with_node(src, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                use cbps_overlay::OverlayServices;
                svc.send(key, TrafficClass::OTHER, i + 100_000, TraceId::NONE);
            })
        });
    }
    sim.run();
    let h = sim.metrics().histogram("pastry.dilation").unwrap();
    assert_eq!(h.len(), 500);
    // Prefix routing gains ≥ 1 bit per hop: ≤ m hops hard, ~log2(n) typical.
    assert!(h.mean() < 7.0, "mean dilation {}", h.mean());
    assert!(h.max().unwrap() <= 13);
}

#[test]
fn pastry_mcast_exactly_once_over_covering_nodes() {
    let (mut sim, ring, cfg) = probe_net(80, 83);
    let space = cfg.space;
    let mut targets = KeyRangeSet::new();
    targets.insert_range(space, KeyRange::new(space.key(7000), space.key(1500))); // wraps
    targets.insert_range(space, KeyRange::new(space.key(4000), space.key(4400)));
    let expected: BTreeSet<usize> = ring
        .covering_nodes(&targets)
        .iter()
        .map(|p| p.idx)
        .collect();
    sim.with_node(9, |node, ctx| {
        node.app_call(ctx, |_, svc| {
            use cbps_overlay::OverlayServices;
            svc.mcast(&targets, TrafficClass::OTHER, 1, TraceId::NONE);
        })
    });
    sim.run();
    let mut got = BTreeSet::new();
    for (idx, n) in sim.nodes() {
        let hits = n.app().delivered.len();
        assert!(hits <= 1, "node {idx} delivered {hits} times");
        if hits == 1 {
            got.insert(idx);
        }
    }
    assert_eq!(got, expected);
}

#[test]
fn common_prefix_len_is_symmetric_and_bounded() {
    let space = cbps_overlay::KeySpace::new(13);
    for (a, b) in [(0u64, 8191u64), (4096, 4097), (123, 123), (1, 2)] {
        let ka = space.key(a);
        let kb = space.key(b);
        assert_eq!(
            common_prefix_len(space, ka, kb),
            common_prefix_len(space, kb, ka)
        );
        assert!(common_prefix_len(space, ka, kb) <= 13);
    }
    assert_eq!(common_prefix_len(space, space.key(5), space.key(5)), 13);
}

//! The portability demonstration: the same pub/sub layer, workload and
//! seeds over Chord and over Pastry must produce the same logical
//! deliveries — only the routing paths (and hence message counts) differ.
//!
//! The core of the suite is a table-driven cross-overlay parity matrix:
//! every ak-mapping × every notification mode × discretization on/off,
//! asserting identical delivered sets, duplicate-suppression counts and
//! stored-subscription totals on both substrates.

use std::collections::BTreeSet;

use cbps::{
    ChordBackend, EventId, MappingKind, NotifyMode, OverlayBackend, Primitive, PubSubConfig,
    PubSubNetwork, PubSubNetworkBuilder, SubId,
};
use cbps_overlay::{KeyRange, KeyRangeSet, OverlayServices, RingView};
use cbps_pastry::{build_pastry_stable, common_prefix_len, PastryBackend, PastryConfig};
use cbps_sim::{NetConfig, SimDuration, TraceId, TrafficClass};
use cbps_workload::{OpKind, Trace, WorkloadConfig, WorkloadGen};

/// What one run of the shared workload produced, in overlay-independent
/// terms.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    delivered: BTreeSet<(usize, SubId, EventId)>,
    duplicates: u64,
    stored_total: usize,
}

fn run_on<B: OverlayBackend>(
    pubsub: PubSubConfig,
    seed: u64,
    nodes: usize,
    trace: &Trace,
) -> Outcome {
    let mut net = PubSubNetworkBuilder::<B>::new()
        .nodes(nodes)
        .net_config(NetConfig::new(seed))
        .pubsub(pubsub)
        .build()
        .expect("valid network configuration");
    // Subscriptions first, publications after a settling gap.
    for op in trace.ops() {
        if let OpKind::Subscribe { sub, ttl } = &op.kind {
            net.subscribe(op.node, sub.clone(), *ttl).unwrap();
        }
    }
    net.run_for_secs(120);
    for op in trace.ops() {
        if let OpKind::Publish { event } = &op.kind {
            net.publish(op.node, event.clone()).unwrap();
        }
    }
    net.run_for_secs(600);

    let mut delivered = BTreeSet::new();
    for i in 0..nodes {
        for n in net.delivered(i) {
            assert!(
                delivered.insert((i, n.sub_id, n.event_id)),
                "duplicate delivery at node {i}"
            );
        }
    }
    Outcome {
        delivered,
        duplicates: net.metrics().counter("notifications.duplicate"),
        stored_total: net.stored_counts().iter().sum(),
    }
}

/// One parity-matrix cell: identical logical outcomes over both overlays.
fn parity_cell(kind: MappingKind, notify: NotifyMode, discretization: u64, seed: u64) {
    let nodes = 40;
    let mut pubsub = PubSubConfig::paper_default()
        .with_mapping(kind)
        .with_primitive(Primitive::MCast)
        .with_notify_mode(notify);
    if discretization > 1 {
        pubsub = pubsub.with_discretization(discretization);
    }
    let wl = WorkloadConfig::paper_default(nodes, 4)
        .with_counts(30, 60)
        .with_matching_probability(0.8);
    let mut gen = WorkloadGen::new(pubsub.space.clone(), wl, seed);
    let trace = gen.gen_trace();

    let chord = run_on::<ChordBackend>(pubsub.clone(), seed, nodes, &trace);
    let pastry = run_on::<PastryBackend>(pubsub, seed, nodes, &trace);

    assert!(
        !chord.delivered.is_empty(),
        "{kind}/{notify:?}/disc={discretization}: workload produced no deliveries"
    );
    assert_eq!(
        chord, pastry,
        "{kind}/{notify:?}/disc={discretization}: overlays disagree"
    );
}

/// The full matrix: 3 ak-mappings × 3 notification modes × discretization
/// on/off. Split into one test per mapping so failures localize and the
/// cells run in parallel.
fn parity_matrix_for(kind: MappingKind, base_seed: u64) {
    let period = SimDuration::from_secs(20);
    let modes = [
        NotifyMode::Immediate,
        NotifyMode::Buffered { period },
        NotifyMode::Collecting { period },
    ];
    for (i, notify) in modes.into_iter().enumerate() {
        for (j, disc) in [1u64, 64].into_iter().enumerate() {
            parity_cell(kind, notify, disc, base_seed + (i * 2 + j) as u64);
        }
    }
}

#[test]
fn parity_matrix_attribute_split() {
    parity_matrix_for(MappingKind::AttributeSplit, 710);
}

#[test]
fn parity_matrix_key_space_split() {
    parity_matrix_for(MappingKind::KeySpaceSplit, 720);
}

#[test]
fn parity_matrix_selective_attribute() {
    parity_matrix_for(MappingKind::SelectiveAttribute, 730);
}

/// The non-default propagation primitives stay in parity too.
#[test]
fn same_deliveries_unicast_and_walk() {
    for (primitive, seed) in [(Primitive::Unicast, 72), (Primitive::Walk, 74)] {
        let nodes = 50;
        let pubsub = PubSubConfig::paper_default()
            .with_mapping(MappingKind::SelectiveAttribute)
            .with_primitive(primitive);
        let wl = WorkloadConfig::paper_default(nodes, 4)
            .with_counts(30, 60)
            .with_matching_probability(0.8);
        let mut gen = WorkloadGen::new(pubsub.space.clone(), wl, seed);
        let trace = gen.gen_trace();
        let chord = run_on::<ChordBackend>(pubsub.clone(), seed, nodes, &trace);
        let pastry = run_on::<PastryBackend>(pubsub, seed, nodes, &trace);
        assert!(!chord.delivered.is_empty());
        assert_eq!(chord, pastry, "{primitive:?}: overlays disagree");
    }
}

/// Both builders share key assignment: same seed, same ring.
#[test]
fn same_seed_same_ring_across_backends() {
    let chord = PubSubNetwork::builder().nodes(50).seed(91).build().unwrap();
    let pastry = PubSubNetworkBuilder::<PastryBackend>::new()
        .nodes(50)
        .seed(91)
        .build()
        .unwrap();
    assert_eq!(chord.ring().peers(), pastry.ring().peers());
}

// ---------------------------------------------------------------------
// Pastry overlay-level properties.
// ---------------------------------------------------------------------

#[derive(Default)]
struct Probe {
    delivered: Vec<(u64, u32)>,
}

impl cbps_overlay::OverlayApp for Probe {
    type Payload = u64;
    type Timer = ();
    fn on_deliver(
        &mut self,
        payload: u64,
        d: cbps_overlay::Delivery,
        _svc: &mut dyn OverlayServices<u64, ()>,
    ) {
        self.delivered.push((payload, d.hops));
    }
}

fn probe_net(
    n: usize,
    seed: u64,
) -> (
    cbps_sim::Simulator<cbps_pastry::PastryNode<Probe>>,
    RingView,
    PastryConfig,
) {
    let cfg = PastryConfig::paper_default();
    let apps: Vec<Probe> = (0..n).map(|_| Probe::default()).collect();
    let (sim, ring) = build_pastry_stable(NetConfig::new(seed), cfg, apps);
    (sim, ring, cfg)
}

#[test]
fn pastry_routing_reaches_oracle_successor() {
    let (mut sim, ring, cfg) = probe_net(60, 81);
    let space = cfg.space;
    for (i, probe) in [0u64, 17, 4095, 8191, 3000, 6000].iter().enumerate() {
        let key = space.key(*probe);
        let expect = ring.successor(key).idx;
        sim.with_node(i % 60, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                svc.send(key, TrafficClass::OTHER, *probe, TraceId::NONE);
            })
        });
        sim.run();
        let holders: Vec<usize> = sim
            .nodes()
            .filter(|(_, n)| n.app().delivered.iter().any(|(p, _)| p == probe))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(holders, vec![expect], "key {probe}");
    }
}

#[test]
fn pastry_prefix_routing_is_logarithmic() {
    let (mut sim, _ring, cfg) = probe_net(128, 82);
    let space = cfg.space;
    for i in 0..500u64 {
        let src = (i % 128) as usize;
        let key = space.key((i * 131 + 7) % space.size());
        sim.with_node(src, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                svc.send(key, TrafficClass::OTHER, i + 100_000, TraceId::NONE);
            })
        });
    }
    sim.run();
    // Routed through the shared handlers, dilation lands in the same
    // per-class histograms as on Chord (observability parity).
    let h = sim.metrics().histogram("dilation.other").unwrap();
    assert_eq!(h.len(), 500);
    // Prefix routing gains ≥ 1 bit per hop: ≤ m hops hard, ~log2(n) typical.
    assert!(h.mean() < 7.0, "mean dilation {}", h.mean());
    assert!(h.max().unwrap() <= 13);
}

#[test]
fn pastry_mcast_exactly_once_over_covering_nodes() {
    let (mut sim, ring, cfg) = probe_net(80, 83);
    let space = cfg.space;
    let mut targets = KeyRangeSet::new();
    targets.insert_range(space, KeyRange::new(space.key(7000), space.key(1500))); // wraps
    targets.insert_range(space, KeyRange::new(space.key(4000), space.key(4400)));
    let expected: BTreeSet<usize> = ring
        .covering_nodes(&targets)
        .iter()
        .map(|p| p.idx)
        .collect();
    sim.with_node(9, |node, ctx| {
        node.app_call(ctx, |_, svc| {
            svc.mcast(&targets, TrafficClass::OTHER, 1, TraceId::NONE);
        })
    });
    sim.run();
    let mut got = BTreeSet::new();
    for (idx, n) in sim.nodes() {
        let hits = n.app().delivered.len();
        assert!(hits <= 1, "node {idx} delivered {hits} times");
        if hits == 1 {
            got.insert(idx);
        }
    }
    assert_eq!(got, expected);
}

#[test]
fn common_prefix_len_is_symmetric_and_bounded() {
    let space = cbps_overlay::KeySpace::new(13);
    for (a, b) in [(0u64, 8191u64), (4096, 4097), (123, 123), (1, 2)] {
        let ka = space.key(a);
        let kb = space.key(b);
        assert_eq!(
            common_prefix_len(space, ka, kb),
            common_prefix_len(space, kb, ka)
        );
        assert!(common_prefix_len(space, ka, kb) <= 13);
    }
    assert_eq!(common_prefix_len(space, space.key(5), space.key(5)), 13);
}

//! Per-node Pastry routing state: leaf set + prefix routing table, and the
//! routing / multicast-split decisions built on them.

use cbps_overlay::{Bundles, Key, KeyRangeSet, KeySpace, Peer, PeerBuf, RingView};

/// Configuration of a Pastry overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PastryConfig {
    /// The `m`-bit identifier space (shared with the pub/sub mappings).
    pub space: KeySpace,
    /// Leaf-set entries per side (clockwise and counter-clockwise).
    pub leaf_len: usize,
    /// Routed messages are dropped after this many hops (cycle backstop).
    pub max_route_hops: u32,
}

impl PastryConfig {
    /// The evaluation default: the paper's `2^13` key space, 4 leaves per
    /// side.
    pub fn paper_default() -> Self {
        PastryConfig {
            space: KeySpace::new(13),
            leaf_len: 4,
            max_route_hops: 64,
        }
    }

    /// Replaces the key space.
    pub fn with_space(mut self, space: KeySpace) -> Self {
        self.space = space;
        self
    }

    /// Replaces the per-side leaf-set length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn with_leaf_len(mut self, len: usize) -> Self {
        assert!(len > 0, "leaf set needs at least one entry per side");
        self.leaf_len = len;
        self
    }
}

impl Default for PastryConfig {
    fn default() -> Self {
        PastryConfig::paper_default()
    }
}

/// Length of the common most-significant-bit prefix of two keys in an
/// `m`-bit space (`m` when equal).
pub fn common_prefix_len(space: KeySpace, a: Key, b: Key) -> u32 {
    let x = a.value() ^ b.value();
    if x == 0 {
        return space.bits();
    }
    let highest = 63 - x.leading_zeros();
    space.bits() - 1 - highest
}

/// The Pastry routing state of one node.
///
/// Routing is by bit-prefix (base `2^1` digits): row `r` of the routing
/// table holds a node sharing exactly `r` leading bits with us and owning
/// the opposite bit at position `r`. The leaf set holds the nearest ring
/// neighbors on both sides. Coverage follows the successor convention
/// (`key ∈ (pred, me]`) so the pub/sub mapping semantics are identical
/// across overlays.
#[derive(Clone, Debug)]
pub struct PastryState {
    cfg: PastryConfig,
    me: Peer,
    /// Nearest clockwise neighbors, closest first.
    leaves_cw: Vec<Peer>,
    /// Nearest counter-clockwise neighbors, closest first.
    leaves_ccw: Vec<Peer>,
    /// `table[r]` = a node sharing exactly `r` leading bits with `me`.
    table: Vec<Option<Peer>>,
}

impl PastryState {
    /// Builds converged state for `me` from the global ring view.
    pub fn converged(cfg: PastryConfig, me: Peer, ring: &RingView) -> Self {
        let space = cfg.space;
        let mut leaves_cw = Vec::with_capacity(cfg.leaf_len);
        let mut cur = me.key;
        for _ in 0..cfg.leaf_len.min(ring.len().saturating_sub(1)) {
            let next = ring.next_node(cur);
            if next.key == me.key {
                break;
            }
            leaves_cw.push(next);
            cur = next.key;
        }
        let mut leaves_ccw = Vec::with_capacity(cfg.leaf_len);
        let mut cur = me.key;
        for _ in 0..cfg.leaf_len.min(ring.len().saturating_sub(1)) {
            let prev = ring.predecessor(cur);
            if prev.key == me.key || leaves_ccw.contains(&prev) {
                break;
            }
            leaves_ccw.push(prev);
            cur = prev.key;
        }
        let m = space.bits();
        let mut table = Vec::with_capacity(m as usize);
        for r in 0..m {
            // The subtree sharing our first r bits but differing at bit r
            // is one contiguous key interval; pick its first node, if the
            // subtree is inhabited.
            let width = m - r - 1; // bits below the differing bit
            let flip = me.key.value() ^ (1u64 << width);
            let lo = (flip >> width) << width;
            let hi = lo | ((1u64 << width) - 1);
            let candidate = ring.successor(space.key(lo));
            let inhabited = candidate.key.value() >= lo && candidate.key.value() <= hi;
            table.push(if inhabited && candidate.key != me.key {
                Some(candidate)
            } else {
                None
            });
        }
        PastryState {
            cfg,
            me,
            leaves_cw,
            leaves_ccw,
            table,
        }
    }

    /// This node's identity.
    pub fn me(&self) -> Peer {
        self.me
    }

    /// The key space.
    pub fn space(&self) -> KeySpace {
        self.cfg.space
    }

    /// The configuration.
    pub fn config(&self) -> &PastryConfig {
        &self.cfg
    }

    /// Immediate ring successor (first clockwise leaf).
    pub fn successor(&self) -> Option<Peer> {
        self.leaves_cw.first().copied()
    }

    /// Immediate ring predecessor (first counter-clockwise leaf).
    pub fn predecessor(&self) -> Option<Peer> {
        self.leaves_ccw.first().copied()
    }

    /// The clockwise leaf set (for replica placement).
    pub fn successors(&self) -> &[Peer] {
        &self.leaves_cw
    }

    /// The routing table (row `r` shares exactly `r` leading bits).
    pub fn table(&self) -> &[Option<Peer>] {
        &self.table
    }

    /// `true` iff this node covers `key` (successor convention).
    pub fn covers(&self, key: Key) -> bool {
        match self.predecessor() {
            None => true,
            Some(p) => self.cfg.space.in_arc_oc(key, p.key, self.me.key),
        }
    }

    /// Every peer this node knows.
    fn known(&self) -> impl Iterator<Item = Peer> + '_ {
        self.leaves_cw
            .iter()
            .chain(self.leaves_ccw.iter())
            .copied()
            .chain(self.table.iter().flatten().copied())
    }

    /// Pastry's routing decision: `None` to deliver locally; otherwise
    /// prefer the routing-table entry matching one more bit of `key`,
    /// falling back to the known node closest-preceding `key` (Chord
    /// style, which guarantees progress and termination).
    pub fn next_hop(&self, key: Key) -> Option<Peer> {
        if self.covers(key) {
            return None;
        }
        let space = self.cfg.space;
        let succ = self.successor()?;
        if space.in_arc_oc(key, self.me.key, succ.key) {
            return Some(succ);
        }
        // Prefix step: the row of our first differing bit with the key
        // holds a node agreeing with the key on that bit — one bit of
        // progress per hop.
        let r = common_prefix_len(space, self.me.key, key);
        if r < space.bits() {
            if let Some(peer) = self.table[r as usize] {
                if common_prefix_len(space, peer.key, key) > r {
                    return Some(peer);
                }
            }
        }
        // Rare case: the subtree is empty or its entry does not help —
        // fall back to the closest known node preceding the key.
        let mut best: Option<Peer> = None;
        let mut best_dist = 0;
        for p in self.known() {
            if space.in_arc_oo(p.key, self.me.key, key) {
                let d = space.distance_cw(self.me.key, p.key);
                if d > best_dist {
                    best_dist = d;
                    best = Some(p);
                }
            }
        }
        Some(best.unwrap_or(succ))
    }

    /// One-to-many split, reusing the clockwise-arc partition argument of
    /// the paper's Figure 4 with the leaf set and routing table as the
    /// boundary nodes: local = our arc; each remaining arc is relayed via
    /// the boundary node preceding it. Exactly-once and termination hold
    /// for the same reasons as on Chord.
    pub fn mcast_split(&self, targets: &KeyRangeSet) -> (KeyRangeSet, Bundles) {
        let space = self.cfg.space;
        let mut bundles = Bundles::take();
        let Some(succ) = self.successor() else {
            return (targets.clone(), bundles);
        };
        let mut boundaries = PeerBuf::take();
        boundaries.extend(self.known());
        boundaries.retain(|p| p.key != self.me.key);
        boundaries.sort_by_key(|p| space.distance_cw(self.me.key, p.key));
        boundaries.dedup_by_key(|p| p.key);
        if boundaries.is_empty() {
            return (targets.clone(), bundles);
        }
        debug_assert_eq!(boundaries[0], succ, "successor is the nearest boundary");

        let mut add = |peer: Peer, part: KeyRangeSet| {
            if part.is_empty() {
                return;
            }
            if let Some((_, set)) = bundles.iter_mut().find(|(p, _)| p.idx == peer.idx) {
                set.union_with(&part);
            } else {
                bundles.push((peer, part));
            }
        };
        add(
            boundaries[0],
            targets.extract_arc_oc(space, self.me.key, boundaries[0].key),
        );
        for w in boundaries.windows(2) {
            add(w[0], targets.extract_arc_oc(space, w[0].key, w[1].key));
        }
        let last = boundaries[boundaries.len() - 1];
        let local = targets.extract_arc_oc(space, last.key, self.me.key);
        (local, bundles)
    }
}

impl cbps_overlay::RouteTable for PastryState {
    fn me(&self) -> Peer {
        PastryState::me(self)
    }
    fn space(&self) -> KeySpace {
        PastryState::space(self)
    }
    fn max_route_hops(&self) -> u32 {
        self.config().max_route_hops
    }
    fn predecessor(&self) -> Option<Peer> {
        PastryState::predecessor(self)
    }
    fn successor(&self) -> Option<Peer> {
        PastryState::successor(self)
    }
    fn successors(&self) -> &[Peer] {
        PastryState::successors(self)
    }
    fn covers(&self, key: Key) -> bool {
        PastryState::covers(self, key)
    }
    fn next_hop(&mut self, key: Key) -> Option<Peer> {
        PastryState::next_hop(self, key)
    }
    fn mcast_split(&self, targets: &KeyRangeSet) -> (KeyRangeSet, Bundles) {
        PastryState::mcast_split(self, targets)
    }
    // Pastry's routing table is computed at convergence; no opportunistic
    // learning, so `learn` keeps the default no-op.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(keys: &[u64], space: KeySpace) -> RingView {
        let peers = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Peer {
                idx: i,
                key: space.key(k),
            })
            .collect();
        RingView::new(space, peers)
    }

    #[test]
    fn common_prefix_lengths() {
        let s = KeySpace::new(8);
        assert_eq!(
            common_prefix_len(s, s.key(0b1010_0000), s.key(0b1010_0000)),
            8
        );
        assert_eq!(
            common_prefix_len(s, s.key(0b1010_0000), s.key(0b1010_0001)),
            7
        );
        assert_eq!(
            common_prefix_len(s, s.key(0b1010_0000), s.key(0b0010_0000)),
            0
        );
        assert_eq!(
            common_prefix_len(s, s.key(0b1011_0000), s.key(0b1010_0000)),
            3
        );
    }

    #[test]
    fn converged_leaf_sets() {
        let s = KeySpace::new(8);
        let ring = ring_of(&[10, 50, 100, 150, 200, 250], s);
        let me = Peer {
            idx: 2,
            key: s.key(100),
        };
        let st = PastryState::converged(PastryConfig::paper_default().with_space(s), me, &ring);
        let cw: Vec<u64> = st.successors().iter().map(|p| p.key.value()).collect();
        assert_eq!(cw, vec![150, 200, 250, 10]);
        assert_eq!(st.predecessor().unwrap().key, s.key(50));
        assert!(st.covers(s.key(75)));
        assert!(!st.covers(s.key(150)));
    }

    #[test]
    fn routing_table_points_into_opposite_subtrees() {
        let s = KeySpace::new(8);
        let ring = ring_of(&[0b0001_0000, 0b0100_0000, 0b1000_0000, 0b1100_0000], s);
        let me = Peer {
            idx: 0,
            key: s.key(0b0001_0000),
        };
        let st = PastryState::converged(PastryConfig::paper_default().with_space(s), me, &ring);
        // Row 0: nodes starting with bit 1 → first of {0b1000.., 0b1100..}.
        let r0 = st.table()[0].unwrap();
        assert_eq!(r0.key, s.key(0b1000_0000));
        assert_eq!(common_prefix_len(s, r0.key, me.key), 0);
        // Row 1: prefix 0, second bit 1 → 0b0100_0000.
        let r1 = st.table()[1].unwrap();
        assert_eq!(r1.key, s.key(0b0100_0000));
        // Row 2: prefix 00, third bit differs (me has 0) → subtree
        // 0b001x_xxxx is empty.
        assert_eq!(st.table()[2], None);
    }

    #[test]
    fn next_hop_gains_a_prefix_bit() {
        let s = KeySpace::new(8);
        let keys: Vec<u64> = (0..32).map(|i| i * 8 + 1).collect();
        let ring = ring_of(&keys, s);
        let me = ring.peers()[0];
        let st = PastryState::converged(
            PastryConfig::paper_default().with_space(s).with_leaf_len(2),
            me,
            &ring,
        );
        let target = s.key(200);
        let hop = st.next_hop(target).unwrap();
        assert!(
            common_prefix_len(s, hop.key, target) > common_prefix_len(s, me.key, target)
                || st.covers(target)
        );
    }

    #[test]
    fn single_node_covers_everything() {
        let s = KeySpace::new(8);
        let ring = ring_of(&[42], s);
        let me = ring.peers()[0];
        let st = PastryState::converged(PastryConfig::paper_default().with_space(s), me, &ring);
        assert!(st.covers(s.key(0)));
        assert_eq!(st.next_hop(s.key(7)), None);
        let (local, bundles) = st.mcast_split(&KeyRangeSet::full(s));
        assert_eq!(local.count(), 256);
        assert!(bundles.is_empty());
    }

    #[test]
    fn mcast_split_partitions() {
        let s = KeySpace::new(8);
        let keys: Vec<u64> = (0..16).map(|i| i * 16 + 3).collect();
        let ring = ring_of(&keys, s);
        let me = ring.peers()[5];
        let st = PastryState::converged(PastryConfig::paper_default().with_space(s), me, &ring);
        let targets = KeyRangeSet::full(s);
        let (local, bundles) = st.mcast_split(&targets);
        let mut union = local.clone();
        let mut total = local.count();
        for (peer, set) in bundles.iter() {
            assert_ne!(peer.key, me.key);
            assert!(!union.intersects(set));
            union.union_with(set);
            total += set.count();
        }
        assert_eq!(total, s.size());
    }
}

//! The Pastry [`OverlayBackend`]: plugging the prefix-routing substrate
//! into the generic pub/sub deployment layer of [`cbps`].

use cbps::{BackendCtx, OverlayBackend, PubSubMsg, PubSubNode, PubSubTimer};
use cbps_overlay::{KeySpace, OverlayServices, Peer, RingView};
use cbps_sim::{NetConfig, Simulator};

use crate::builder::build_pastry_stable;
use crate::node::PastryNode;
use crate::state::PastryConfig;

/// The Pastry substrate: bit-prefix routing table plus leaf sets, built
/// statically in converged-network mode (the setting of the paper's
/// experiments). Dynamic membership lives in the Chord substrate; the
/// churn entry points panic here.
#[derive(Clone, Copy, Debug)]
pub struct PastryBackend;

impl OverlayBackend for PastryBackend {
    const NAME: &'static str = "pastry";
    const SUPPORTS_CHURN: bool = false;

    type Config = PastryConfig;
    type Node = PastryNode<PubSubNode>;

    fn paper_default() -> PastryConfig {
        PastryConfig::paper_default()
    }

    fn key_space(cfg: &PastryConfig) -> KeySpace {
        cfg.space
    }

    fn with_key_space(cfg: PastryConfig, keys: KeySpace) -> PastryConfig {
        cfg.with_space(keys)
    }

    fn replication_capacity(cfg: &PastryConfig) -> usize {
        cfg.leaf_len
    }

    fn build(
        net: NetConfig,
        cfg: &PastryConfig,
        apps: Vec<PubSubNode>,
    ) -> (Simulator<Self::Node>, RingView) {
        build_pastry_stable(net, *cfg, apps)
    }

    fn app(node: &Self::Node) -> &PubSubNode {
        node.app()
    }

    fn app_mut(node: &mut Self::Node) -> &mut PubSubNode {
        node.app_mut()
    }

    fn me(node: &Self::Node) -> Peer {
        node.me()
    }

    fn app_call<R>(
        node: &mut Self::Node,
        ctx: &mut BackendCtx<'_>,
        f: impl FnOnce(&mut PubSubNode, &mut dyn OverlayServices<PubSubMsg, PubSubTimer>) -> R,
    ) -> R {
        node.app_call(ctx, f)
    }

    fn start_leave(_node: &mut Self::Node, _ctx: &mut BackendCtx<'_>) {
        unreachable!("the pastry substrate has static membership");
    }

    fn new_node(_cfg: &PastryConfig, _me: Peer, _app: PubSubNode) -> Self::Node {
        unreachable!("the pastry substrate has static membership");
    }

    fn start_join(_node: &mut Self::Node, _bootstrap: Peer, _ctx: &mut BackendCtx<'_>) {
        unreachable!("the pastry substrate has static membership");
    }
}

/// The pub/sub deployment over the Pastry substrate — same façade, same
/// builder API and observability surface as the Chord-backed
/// [`cbps::PubSubNetwork`].
pub type PastryPubSub = cbps::PubSubNetwork<PastryBackend>;

/// Builder for [`PastryPubSub`]; start from
/// [`PastryPubSubBuilder::new`].
pub type PastryPubSubBuilder = cbps::PubSubNetworkBuilder<PastryBackend>;

//! The Pastry node: a thin shell over the shared routed-message handlers.
//!
//! All payload mechanics (unicast forwarding, `m-cast` splitting, the
//! conservative range walk, delivery staging and dilation accounting) live
//! in [`cbps_overlay::routed`], written once against the [`RouteTable`]
//! surface that [`PastryState`] implements. What remains here is the
//! substrate's identity: wiring the simulator upcalls to those handlers.
//! Membership is static (the converged-network mode the paper's
//! experiments run in), so the Chord maintenance messages an
//! [`OverlayMsg`] can carry are ignored and only application timers fire.

use cbps_overlay::routed;
use cbps_overlay::{
    Envelope, OverlayApp, OverlayMsg, OverlayServices, OverlaySvc, OverlayTimer, Peer,
};
use cbps_sim::{Context, Node, NodeIdx};

use crate::state::PastryState;

/// A Pastry overlay node hosting an application.
///
/// Speaks the same wire [`Envelope`]/[`OverlayMsg`] language and hosts the
/// same [`OverlayApp`] type as the Chord node, so applications and
/// deployment layers are substrate-generic.
#[derive(Debug)]
pub struct PastryNode<A: OverlayApp> {
    state: PastryState,
    app: A,
}

impl<A: OverlayApp> PastryNode<A> {
    /// Creates a node from converged routing state.
    pub fn new(state: PastryState, app: A) -> Self {
        PastryNode { state, app }
    }

    /// This node's identity.
    pub fn me(&self) -> Peer {
        self.state.me()
    }

    /// The routing state for inspection.
    pub fn routing(&self) -> &PastryState {
        &self.state
    }

    /// The hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Exclusive access to the hosted application.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Runs an application-level call with a live service handle — the way
    /// external drivers invoke `sub()` / `pub()` on a node.
    pub fn app_call<R>(
        &mut self,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
        f: impl FnOnce(&mut A, &mut dyn OverlayServices<A::Payload, A::Timer>) -> R,
    ) -> R {
        let mut svc = OverlaySvc::new(&mut self.state, ctx);
        f(&mut self.app, &mut svc)
    }
}

impl<A: OverlayApp> Node for PastryNode<A> {
    type Msg = Envelope<A::Payload>;
    type Timer = OverlayTimer<A::Timer>;

    fn on_message(
        &mut self,
        _from: NodeIdx,
        envelope: Envelope<A::Payload>,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
    ) {
        let sender = envelope.sender;
        match envelope.body {
            OverlayMsg::Unicast {
                key,
                class,
                payload,
                hops,
                src,
                trace,
            } => {
                routed::handle_unicast(
                    &mut self.state,
                    &mut self.app,
                    key,
                    class,
                    payload,
                    hops,
                    src,
                    trace,
                    ctx,
                );
            }
            OverlayMsg::MCast {
                targets,
                class,
                payload,
                hops,
                src,
                trace,
            } => {
                routed::handle_mcast(
                    &mut self.state,
                    &mut self.app,
                    targets,
                    class,
                    payload,
                    hops,
                    src,
                    trace,
                    ctx,
                );
            }
            OverlayMsg::Walk {
                range,
                class,
                payload,
                hops,
                src,
                walking,
                trace,
            } => {
                routed::handle_walk(
                    &mut self.state,
                    &mut self.app,
                    range,
                    class,
                    payload,
                    hops,
                    src,
                    walking,
                    trace,
                    ctx,
                );
            }
            OverlayMsg::Direct { payload, class } => {
                let _ = class;
                routed::handle_direct(&mut self.state, &mut self.app, sender, payload, ctx);
            }
            // Chord ring-maintenance messages; never sent on the static
            // Pastry substrate.
            _ => {}
        }
    }

    fn on_timer(&mut self, timer: Self::Timer, ctx: &mut Context<'_, Self::Msg, Self::Timer>) {
        // Maintenance timers are never armed on the static substrate.
        if let OverlayTimer::App(t) = timer {
            routed::handle_app_timer(&mut self.state, &mut self.app, t, ctx);
        }
    }
}

//! The Pastry node: message handling and the application bridge.

use std::rc::Rc;

use cbps_overlay::{
    take_payload, Delivery, Key, KeyRange, KeyRangeSet, KeySpace, OverlayServices, Peer,
};
use cbps_rng::Rng;
use cbps_sim::{Context, Metrics, Node, NodeIdx, SimDuration, SimTime, TraceId, TrafficClass};

use crate::state::PastryState;

/// Wire messages of the Pastry overlay (static membership: payload
/// routing only).
#[derive(Clone, Debug, PartialEq)]
pub enum PastryMsg<P> {
    /// Key-routed payload.
    Route {
        /// Destination key.
        key: Key,
        /// Traffic class for hop accounting.
        class: TrafficClass,
        /// Application payload, shared across hops (a clone of this
        /// message bumps a refcount instead of deep-copying the payload).
        payload: Rc<P>,
        /// One-hop transmissions so far.
        hops: u32,
        /// Originator.
        src: Peer,
        /// Causal trace of the sending operation ([`TraceId::NONE`] when
        /// untraced).
        trace: TraceId,
    },
    /// One-to-many payload over a key set.
    MCast {
        /// Remaining target keys of this branch.
        targets: KeyRangeSet,
        /// Traffic class for hop accounting.
        class: TrafficClass,
        /// Application payload, shared across branches.
        payload: Rc<P>,
        /// One-hop transmissions so far.
        hops: u32,
        /// Originator.
        src: Peer,
        /// Causal trace of the sending operation ([`TraceId::NONE`] when
        /// untraced).
        trace: TraceId,
    },
    /// Leaf-walk propagation along a contiguous range.
    Walk {
        /// Full target range.
        range: KeyRange,
        /// Traffic class for hop accounting.
        class: TrafficClass,
        /// Application payload, shared along the walk.
        payload: Rc<P>,
        /// One-hop transmissions so far.
        hops: u32,
        /// Originator.
        src: Peer,
        /// Whether the walk phase has begun.
        walking: bool,
        /// Causal trace of the sending operation ([`TraceId::NONE`] when
        /// untraced).
        trace: TraceId,
    },
    /// One-hop application message.
    Direct {
        /// Application payload.
        payload: Rc<P>,
    },
}

/// An envelope stamping the transmitting node.
#[derive(Clone, Debug, PartialEq)]
pub struct PastryEnvelope<P> {
    /// The transmitting node.
    pub sender: Peer,
    /// The message.
    pub body: PastryMsg<P>,
}

/// The application stacked on a Pastry node (mirror of the Chord-side
/// `ChordApp`, without dynamic-membership hooks: the Pastry substrate is
/// built statically).
pub trait PastryApp: Sized {
    /// Routed payload type.
    type Payload: Clone;
    /// Application timer token.
    type Timer;

    /// A routed payload arrived at a key this node covers.
    fn on_deliver(
        &mut self,
        payload: Self::Payload,
        delivery: Delivery,
        svc: &mut PastrySvc<'_, '_, Self::Payload, Self::Timer>,
    );

    /// A one-hop direct message arrived.
    fn on_direct(
        &mut self,
        from: Peer,
        payload: Self::Payload,
        svc: &mut PastrySvc<'_, '_, Self::Payload, Self::Timer>,
    ) {
        let _ = (from, payload, svc);
    }

    /// An application timer fired.
    fn on_timer(
        &mut self,
        timer: Self::Timer,
        svc: &mut PastrySvc<'_, '_, Self::Payload, Self::Timer>,
    ) {
        let _ = (timer, svc);
    }
}

/// The service handle handed to Pastry application upcalls; implements
/// the overlay-neutral [`OverlayServices`] surface.
#[derive(Debug)]
pub struct PastrySvc<'a, 'c, P, T> {
    state: &'a PastryState,
    ctx: &'a mut Context<'c, PastryEnvelope<P>, T>,
}

impl<P: Clone, T> PastrySvc<'_, '_, P, T> {
    /// Routes an already-shared payload toward `key`.
    fn send_rc(&mut self, key: Key, class: TrafficClass, payload: Rc<P>, trace: TraceId) {
        let me = self.state.me();
        let route = |hops| PastryMsg::Route {
            key,
            class,
            payload,
            hops,
            src: me,
            trace,
        };
        match self.state.next_hop(key) {
            None => self.ctx.send_local(PastryEnvelope {
                sender: me,
                body: route(0),
            }),
            Some(hop) => self.ctx.send(
                hop.idx,
                class,
                PastryEnvelope {
                    sender: me,
                    body: route(1),
                },
            ),
        }
    }
}

impl<P: Clone, T> OverlayServices<P, T> for PastrySvc<'_, '_, P, T> {
    fn me(&self) -> Peer {
        self.state.me()
    }
    fn space(&self) -> KeySpace {
        self.state.space()
    }
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn rng(&mut self) -> &mut Rng {
        self.ctx.rng()
    }
    fn metrics(&mut self) -> &mut Metrics {
        self.ctx.metrics()
    }
    fn successor(&self) -> Option<Peer> {
        self.state.successor()
    }
    fn predecessor(&self) -> Option<Peer> {
        self.state.predecessor()
    }
    fn successors(&self) -> &[Peer] {
        self.state.successors()
    }
    fn covers(&self, key: Key) -> bool {
        self.state.covers(key)
    }
    fn arm_timer(&mut self, delay: SimDuration, timer: T) {
        self.ctx.arm_timer(delay, timer);
    }
    fn send(&mut self, key: Key, class: TrafficClass, payload: P, trace: TraceId) {
        self.send_rc(key, class, Rc::new(payload), trace);
    }
    fn mcast(&mut self, targets: &KeyRangeSet, class: TrafficClass, payload: P, trace: TraceId) {
        if targets.is_empty() {
            return;
        }
        let me = self.state.me();
        let payload = Rc::new(payload);
        let (local, bundles) = self.state.mcast_split(targets);
        if !local.is_empty() {
            self.ctx.send_local(PastryEnvelope {
                sender: me,
                body: PastryMsg::MCast {
                    targets: local,
                    class,
                    payload: Rc::clone(&payload),
                    hops: 0,
                    src: me,
                    trace,
                },
            });
        }
        for (peer, subset) in bundles {
            self.ctx.send(
                peer.idx,
                class,
                PastryEnvelope {
                    sender: me,
                    body: PastryMsg::MCast {
                        targets: subset,
                        class,
                        payload: Rc::clone(&payload),
                        hops: 1,
                        src: me,
                        trace,
                    },
                },
            );
        }
    }
    fn ucast_keys(
        &mut self,
        targets: &KeyRangeSet,
        class: TrafficClass,
        payload: P,
        trace: TraceId,
    ) {
        let space = self.state.space();
        let payload = Rc::new(payload);
        let keys: Vec<Key> = targets.iter_keys(space).collect();
        for key in keys {
            self.send_rc(key, class, Rc::clone(&payload), trace);
        }
    }
    fn walk(&mut self, range: KeyRange, class: TrafficClass, payload: P, trace: TraceId) {
        let me = self.state.me();
        let payload = Rc::new(payload);
        let body = PastryMsg::Walk {
            range,
            class,
            payload,
            hops: 0,
            src: me,
            walking: false,
            trace,
        };
        match self.state.next_hop(range.start()) {
            None => self.ctx.send_local(PastryEnvelope { sender: me, body }),
            Some(hop) => {
                let mut env = PastryEnvelope { sender: me, body };
                if let PastryMsg::Walk { hops, .. } = &mut env.body {
                    *hops = 1;
                }
                self.ctx.send(hop.idx, class, env);
            }
        }
    }
    fn direct(&mut self, to: Peer, class: TrafficClass, payload: P) {
        let me = self.state.me();
        self.ctx.send(
            to.idx,
            class,
            PastryEnvelope {
                sender: me,
                body: PastryMsg::Direct {
                    payload: Rc::new(payload),
                },
            },
        );
    }
}

/// A Pastry overlay node hosting an application.
#[derive(Debug)]
pub struct PastryNode<A: PastryApp> {
    state: PastryState,
    app: A,
}

impl<A: PastryApp> PastryNode<A> {
    /// Creates a node from converged routing state.
    pub fn new(state: PastryState, app: A) -> Self {
        PastryNode { state, app }
    }

    /// This node's identity.
    pub fn me(&self) -> Peer {
        self.state.me()
    }

    /// The routing state for inspection.
    pub fn routing(&self) -> &PastryState {
        &self.state
    }

    /// The hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Exclusive access to the hosted application.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Runs an application-level call with a live [`PastrySvc`].
    pub fn app_call<R>(
        &mut self,
        ctx: &mut Context<'_, PastryEnvelope<A::Payload>, A::Timer>,
        f: impl FnOnce(&mut A, &mut PastrySvc<'_, '_, A::Payload, A::Timer>) -> R,
    ) -> R {
        let mut svc = PastrySvc {
            state: &self.state,
            ctx,
        };
        f(&mut self.app, &mut svc)
    }

    /// `true` (and counts the drop) when `hops` exceeds the configured TTL.
    fn ttl_exceeded(
        &self,
        hops: u32,
        ctx: &mut Context<'_, PastryEnvelope<A::Payload>, A::Timer>,
    ) -> bool {
        if hops >= self.state.config().max_route_hops {
            ctx.metrics().add("routing.ttl-drop", 1);
            true
        } else {
            false
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    fn deliver(
        &mut self,
        payload: A::Payload,
        targets_here: KeyRangeSet,
        class: TrafficClass,
        hops: u32,
        src: Peer,
        trace: TraceId,
        ctx: &mut Context<'_, PastryEnvelope<A::Payload>, A::Timer>,
    ) {
        ctx.metrics()
            .histogram_mut("pastry.dilation")
            .record(u64::from(hops));
        let delivery = Delivery {
            targets_here,
            class,
            hops,
            src,
            trace,
        };
        let mut svc = PastrySvc {
            state: &self.state,
            ctx,
        };
        self.app.on_deliver(payload, delivery, &mut svc);
    }
}

impl<A: PastryApp> Node for PastryNode<A> {
    type Msg = PastryEnvelope<A::Payload>;
    type Timer = A::Timer;

    fn on_message(
        &mut self,
        _from: NodeIdx,
        envelope: PastryEnvelope<A::Payload>,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
    ) {
        let sender = envelope.sender;
        match envelope.body {
            PastryMsg::Route {
                key,
                class,
                payload,
                hops,
                src,
                trace,
            } => {
                if self.ttl_exceeded(hops, ctx) {
                    return;
                }
                match self.state.next_hop(key) {
                    None => {
                        let here = KeyRangeSet::of_key(self.state.space(), key);
                        self.deliver(take_payload(payload), here, class, hops, src, trace, ctx);
                    }
                    Some(hop) => {
                        let me = self.state.me();
                        ctx.route_hop(trace, class);
                        ctx.send(
                            hop.idx,
                            class,
                            PastryEnvelope {
                                sender: me,
                                body: PastryMsg::Route {
                                    key,
                                    class,
                                    payload,
                                    hops: hops + 1,
                                    src,
                                    trace,
                                },
                            },
                        );
                    }
                }
            }
            PastryMsg::MCast {
                targets,
                class,
                payload,
                hops,
                src,
                trace,
            } => {
                if self.ttl_exceeded(hops, ctx) {
                    return;
                }
                let (local, bundles) = self.state.mcast_split(&targets);
                let me = self.state.me();
                if !bundles.is_empty() {
                    ctx.route_hop(trace, class);
                }
                for (peer, subset) in bundles {
                    ctx.send(
                        peer.idx,
                        class,
                        PastryEnvelope {
                            sender: me,
                            body: PastryMsg::MCast {
                                targets: subset,
                                class,
                                payload: Rc::clone(&payload),
                                hops: hops + 1,
                                src,
                                trace,
                            },
                        },
                    );
                }
                if !local.is_empty() {
                    self.deliver(take_payload(payload), local, class, hops, src, trace, ctx);
                }
            }
            PastryMsg::Walk {
                range,
                class,
                payload,
                hops,
                src,
                walking,
                trace,
            } => {
                if self.ttl_exceeded(hops, ctx) {
                    return;
                }
                let space = self.state.space();
                if !walking {
                    if let Some(hop) = self.state.next_hop(range.start()) {
                        let me = self.state.me();
                        ctx.route_hop(trace, class);
                        ctx.send(
                            hop.idx,
                            class,
                            PastryEnvelope {
                                sender: me,
                                body: PastryMsg::Walk {
                                    range,
                                    class,
                                    payload,
                                    hops: hops + 1,
                                    src,
                                    walking: false,
                                    trace,
                                },
                            },
                        );
                        return;
                    }
                }
                let me = self.state.me();
                let pred = self.state.predecessor().unwrap_or(me);
                let full = KeyRangeSet::of_range(space, range);
                let local = full.extract_arc_oc(space, pred.key, me.key);
                // Decide whether the walk continues before delivering, so
                // the terminal hop can move the payload out of its Rc
                // instead of deep-copying it.
                let next = if range.contains(space, me.key) && me.key != range.end() {
                    self.state.successor()
                } else {
                    None
                };
                match next {
                    Some(succ) => {
                        if !local.is_empty() {
                            let p = take_payload(Rc::clone(&payload));
                            self.deliver(p, local, class, hops, src, trace, ctx);
                        }
                        ctx.route_hop(trace, class);
                        ctx.send(
                            succ.idx,
                            class,
                            PastryEnvelope {
                                sender: me,
                                body: PastryMsg::Walk {
                                    range,
                                    class,
                                    payload,
                                    hops: hops + 1,
                                    src,
                                    walking: true,
                                    trace,
                                },
                            },
                        );
                    }
                    None => {
                        if !local.is_empty() {
                            self.deliver(
                                take_payload(payload),
                                local,
                                class,
                                hops,
                                src,
                                trace,
                                ctx,
                            );
                        }
                    }
                }
            }
            PastryMsg::Direct { payload } => {
                let payload = take_payload(payload);
                let mut svc = PastrySvc {
                    state: &self.state,
                    ctx,
                };
                self.app.on_direct(sender, payload, &mut svc);
            }
        }
    }

    fn on_timer(&mut self, timer: Self::Timer, ctx: &mut Context<'_, Self::Msg, Self::Timer>) {
        let mut svc = PastrySvc {
            state: &self.state,
            ctx,
        };
        self.app.on_timer(timer, &mut svc);
    }
}

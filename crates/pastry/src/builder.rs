//! Building static Pastry networks inside a simulator.

use cbps_overlay::{assign_node_keys, build_indexed, OverlayApp, OverlayConfig, Peer, RingView};
use cbps_sim::{NetConfig, Simulator};

use crate::node::PastryNode;
use crate::state::{PastryConfig, PastryState};

/// Builds a converged Pastry network of `apps.len()` nodes and returns
/// the simulator together with the global ring view (node index `i` hosts
/// `apps[i]`). Node keys use the same consistent hashing as the Chord
/// builder, so a Pastry deployment with the same seed sees the same ring.
///
/// # Panics
///
/// Panics if `apps` is empty or larger than the key space.
pub fn build_pastry_stable<A: OverlayApp>(
    net: NetConfig,
    cfg: PastryConfig,
    apps: Vec<A>,
) -> (Simulator<PastryNode<A>>, RingView) {
    assert!(!apps.is_empty(), "a network needs at least one node");
    let n = apps.len();
    // Reuse the Chord key-assignment (collision-free consistent hashing).
    let overlay_like = OverlayConfig::paper_default().with_space(cfg.space);
    let keys = assign_node_keys(&overlay_like, n);
    let peers: Vec<Peer> = keys
        .iter()
        .enumerate()
        .map(|(idx, &key)| Peer { idx, key })
        .collect();
    let ring = RingView::new(cfg.space, peers.clone());

    // Converged state is a pure function of the ring table, so it fans out
    // over the overlay builder's worker pool (identical at any job count).
    let states = build_indexed(n, |idx| PastryState::converged(cfg, peers[idx], &ring));
    let mut sim = Simulator::new(net);
    for (idx, (state, app)) in states.into_iter().zip(apps).enumerate() {
        let added = sim.add_node(PastryNode::new(state, app));
        debug_assert_eq!(added, idx);
    }
    (sim, ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbps_overlay::{Delivery, OverlayServices};

    #[derive(Default)]
    struct Sink {
        got: u32,
    }

    impl OverlayApp for Sink {
        type Payload = u8;
        type Timer = ();
        fn on_deliver(&mut self, _p: u8, _d: Delivery, _svc: &mut dyn OverlayServices<u8, ()>) {
            self.got += 1;
        }
    }

    #[test]
    fn stable_network_has_consistent_neighbors() {
        let cfg = PastryConfig::paper_default();
        let apps: Vec<Sink> = (0..40).map(|_| Sink::default()).collect();
        let (sim, ring) = build_pastry_stable(NetConfig::new(5), cfg, apps);
        for (idx, node) in sim.nodes() {
            let me = node.me();
            assert_eq!(me.idx, idx);
            assert_eq!(node.routing().successor().unwrap(), ring.next_node(me.key));
            assert_eq!(
                node.routing().predecessor().unwrap(),
                ring.predecessor(me.key)
            );
        }
    }

    #[test]
    fn same_seed_same_ring_as_chord_builder() {
        let cfg = PastryConfig::paper_default();
        let apps: Vec<Sink> = (0..10).map(|_| Sink::default()).collect();
        let (_, pastry_ring) = build_pastry_stable(NetConfig::new(9), cfg, apps);
        let chord_keys =
            assign_node_keys(&OverlayConfig::paper_default().with_space(cfg.space), 10);
        let pastry_keys: Vec<_> = {
            let mut v: Vec<_> = pastry_ring.peers().iter().map(|p| p.key).collect();
            v.sort();
            v
        };
        let mut chord_sorted = chord_keys;
        chord_sorted.sort();
        assert_eq!(pastry_keys, chord_sorted);
    }
}

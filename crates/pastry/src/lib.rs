//! # cbps-pastry — a second overlay substrate, proving portability
//!
//! The paper states (§3.1, footnote 1) that its publish-subscribe
//! infrastructure "is portable in the sense that it can use any overlay
//! routing scheme" (CAN, Chord, Pastry, Tapestry). This crate makes the
//! claim concrete: a **Pastry-style overlay** — bit-prefix routing table
//! plus leaf sets — hosting the *unchanged* CB-pub/sub layer of the
//! [`cbps`] crate through the overlay-neutral
//! [`cbps_overlay::OverlayServices`] surface.
//!
//! The substrate plugs into the generic deployment layer through
//! [`cbps::OverlayBackend`]: [`PastryPubSub`] is the *same*
//! `PubSubNetwork` type as the Chord deployment, instantiated with
//! [`PastryBackend`] — one façade, builder, handle and observability
//! surface for both overlays.
//!
//! Scope notes (documented simplifications):
//!
//! * membership is static (the converged-network mode the paper's
//!   experiments run in); dynamic join/leave lives in the Chord substrate;
//! * coverage follows the successor convention (`key ∈ (pred, me]`) rather
//!   than Pastry's numerically-closest rule, so the ak-mapping semantics
//!   are bit-identical across overlays — routing, however, is genuinely
//!   prefix-based;
//! * the one-to-many primitive reuses the clockwise-arc partition argument
//!   of the paper's Figure 4 with leaf-set ∪ routing-table entries as
//!   boundaries.
//!
//! # Examples
//!
//! ```
//! use cbps::{Event, Subscription};
//! use cbps_pastry::PastryPubSubBuilder;
//!
//! let mut net = PastryPubSubBuilder::new().nodes(40).seed(7).build()?;
//! let space = net.config().space.clone();
//! let sub = Subscription::builder(&space).range("a0", 100_000, 200_000)?.build()?;
//! let sub_id = net.node(3)?.subscribe(sub, None)?;
//! net.run_for_secs(5);
//! net.node(9)?.publish(Event::new(&space, vec![150_000, 1, 2, 3])?)?;
//! net.run_for_secs(5);
//! assert_eq!(net.delivered(3).len(), 1);
//! assert_eq!(net.delivered(3)[0].sub_id, sub_id);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod backend;
mod builder;
mod node;
mod state;

pub use backend::{PastryBackend, PastryPubSub, PastryPubSubBuilder};
pub use builder::build_pastry_stable;
pub use node::PastryNode;
pub use state::{common_prefix_len, PastryConfig, PastryState};

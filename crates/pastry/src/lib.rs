//! # cbps-pastry — a second overlay substrate, proving portability
//!
//! The paper states (§3.1, footnote 1) that its publish-subscribe
//! infrastructure "is portable in the sense that it can use any overlay
//! routing scheme" (CAN, Chord, Pastry, Tapestry). This crate makes the
//! claim concrete: a **Pastry-style overlay** — bit-prefix routing table
//! plus leaf sets — hosting the *unchanged* CB-pub/sub layer of the
//! [`cbps`] crate through the overlay-neutral
//! [`cbps_overlay::OverlayServices`] surface.
//!
//! Scope notes (documented simplifications):
//!
//! * membership is static (the converged-network mode the paper's
//!   experiments run in); dynamic join/leave lives in the Chord substrate;
//! * coverage follows the successor convention (`key ∈ (pred, me]`) rather
//!   than Pastry's numerically-closest rule, so the ak-mapping semantics
//!   are bit-identical across overlays — routing, however, is genuinely
//!   prefix-based;
//! * the one-to-many primitive reuses the clockwise-arc partition argument
//!   of the paper's Figure 4 with leaf-set ∪ routing-table entries as
//!   boundaries.
//!
//! # Examples
//!
//! See [`PastryPubSubNetwork`] for an end-to-end pub/sub deployment over
//! Pastry.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod builder;
mod node;
mod pubsub;
mod state;

pub use builder::build_pastry_stable;
pub use node::{PastryApp, PastryEnvelope, PastryMsg, PastryNode, PastrySvc};
pub use pubsub::{PastryNodeHandle, PastryPubSubNetwork, PastryPubSubNetworkBuilder};
pub use state::{common_prefix_len, PastryConfig, PastryState};

//! The CB-pub/sub layer running over Pastry — the paper's portability
//! claim (§3.1: the infrastructure "can use any overlay routing scheme"),
//! made concrete: the *same* [`PubSubNode`] logic, hosted by a different
//! overlay through the overlay-neutral `OverlayServices` surface.

use std::sync::Arc;

use cbps::{
    ConfigError, DeliveredNote, Event, EventId, PubSubConfig, PubSubError, PubSubMsg, PubSubNode,
    PubSubTimer, SubId, Subscription,
};
use cbps_overlay::{Delivery, Peer, RingView};
use cbps_sim::{Metrics, NetConfig, NodeIdx, ObsMode, SimDuration, SimTime, Simulator};

use crate::builder::build_pastry_stable;
use crate::node::{PastryApp, PastryNode, PastrySvc};
use crate::state::PastryConfig;

impl PastryApp for PubSubNode {
    type Payload = PubSubMsg;
    type Timer = PubSubTimer;

    fn on_deliver(
        &mut self,
        payload: PubSubMsg,
        _delivery: Delivery,
        svc: &mut PastrySvc<'_, '_, PubSubMsg, PubSubTimer>,
    ) {
        self.handle_deliver(payload, svc);
    }

    fn on_direct(
        &mut self,
        from: Peer,
        payload: PubSubMsg,
        svc: &mut PastrySvc<'_, '_, PubSubMsg, PubSubTimer>,
    ) {
        self.handle_direct_msg(from, payload, svc);
    }

    fn on_timer(
        &mut self,
        timer: PubSubTimer,
        svc: &mut PastrySvc<'_, '_, PubSubMsg, PubSubTimer>,
    ) {
        self.handle_timer_fired(timer, svc);
    }
}

/// A complete pub/sub deployment over a static Pastry overlay — the
/// Pastry twin of [`cbps::PubSubNetwork`].
///
/// # Examples
///
/// ```
/// use cbps::{Event, Subscription};
/// use cbps_pastry::PastryPubSubNetwork;
///
/// let mut net = PastryPubSubNetwork::builder().nodes(40).seed(3).build()?;
/// let space = net.config().space.clone();
/// let sub = Subscription::builder(&space).range("a0", 0, 100_000)?.build()?;
/// net.node(1)?.subscribe(sub, None)?;
/// net.run_for_secs(10);
/// net.node(7)?.publish(Event::new(&space, vec![50_000, 1, 2, 3])?)?;
/// net.run_for_secs(10);
/// assert_eq!(net.delivered(1).len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PastryPubSubNetwork {
    sim: Simulator<PastryNode<PubSubNode>>,
    ring: RingView,
    cfg: Arc<PubSubConfig>,
}

/// Builder for [`PastryPubSubNetwork`].
#[derive(Clone, Debug)]
pub struct PastryPubSubNetworkBuilder {
    nodes: usize,
    net: NetConfig,
    pastry: PastryConfig,
    pubsub: PubSubConfig,
    obs: ObsMode,
}

/// A borrowed view of one node of a [`PastryPubSubNetwork`] — the Pastry
/// twin of [`cbps::NodeHandle`].
#[derive(Debug)]
pub struct PastryNodeHandle<'a> {
    net: &'a mut PastryPubSubNetwork,
    idx: NodeIdx,
}

impl PastryNodeHandle<'_> {
    /// The node's index in the network.
    pub fn idx(&self) -> NodeIdx {
        self.idx
    }

    /// Issues a subscription from this node.
    pub fn subscribe(
        &mut self,
        sub: Subscription,
        ttl: Option<SimDuration>,
    ) -> Result<SubId, PubSubError> {
        self.net.subscribe(self.idx, sub, ttl)
    }

    /// Withdraws a subscription previously issued by this node.
    pub fn unsubscribe(&mut self, id: SubId) -> Result<bool, PubSubError> {
        self.net.unsubscribe(self.idx, id)
    }

    /// Publishes an event from this node.
    pub fn publish(&mut self, event: Event) -> Result<EventId, PubSubError> {
        self.net.publish(self.idx, event)
    }

    /// Notifications received so far by this node as a subscriber.
    pub fn delivered(&self) -> &[DeliveredNote] {
        self.net.delivered(self.idx)
    }
}

impl PastryPubSubNetwork {
    /// Starts configuring a Pastry-hosted deployment.
    pub fn builder() -> PastryPubSubNetworkBuilder {
        PastryPubSubNetworkBuilder {
            nodes: 100,
            net: NetConfig::new(0),
            pastry: PastryConfig::paper_default(),
            pubsub: PubSubConfig::paper_default(),
            obs: ObsMode::Off,
        }
    }

    /// The shared pub/sub configuration.
    pub fn config(&self) -> &PubSubConfig {
        &self.cfg
    }

    /// The global ring view.
    pub fn ring(&self) -> &RingView {
        &self.ring
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// `false`: construction requires at least one node.
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// The pub/sub state of a node.
    pub fn app(&self, node: NodeIdx) -> &PubSubNode {
        self.sim.node(node).app()
    }

    /// Notifications received by `node`.
    pub fn delivered(&self, node: NodeIdx) -> &[DeliveredNote] {
        self.app(node).delivered()
    }

    /// A validated handle on one node: `net.node(3)?.subscribe(sub, None)?`.
    ///
    /// # Errors
    ///
    /// [`PubSubError::UnknownNode`] when `node` is out of bounds.
    pub fn node(&mut self, node: NodeIdx) -> Result<PastryNodeHandle<'_>, PubSubError> {
        self.check_node(node)?;
        Ok(PastryNodeHandle {
            net: self,
            idx: node,
        })
    }

    fn check_node(&self, node: NodeIdx) -> Result<(), PubSubError> {
        let nodes = self.sim.len();
        if node >= nodes {
            return Err(PubSubError::UnknownNode { node, nodes });
        }
        Ok(())
    }

    /// Issues a subscription from `node`.
    ///
    /// # Errors
    ///
    /// [`PubSubError::UnknownNode`] when `node` is out of bounds;
    /// [`PubSubError::InvalidSubscription`] when the subscription was
    /// built for an event space of a different dimension count.
    pub fn subscribe(
        &mut self,
        node: NodeIdx,
        sub: Subscription,
        ttl: Option<SimDuration>,
    ) -> Result<SubId, PubSubError> {
        self.check_node(node)?;
        let expected = self.cfg.space.dims();
        if sub.dims() != expected {
            return Err(PubSubError::InvalidSubscription {
                expected,
                got: sub.dims(),
            });
        }
        Ok(self.sim.with_node(node, |n, ctx| {
            n.app_call(ctx, |app, svc| app.subscribe(sub, ttl, svc))
        }))
    }

    /// Withdraws a subscription previously issued by `node`. Returns
    /// `Ok(false)` if `node` never issued `id`.
    pub fn unsubscribe(&mut self, node: NodeIdx, id: SubId) -> Result<bool, PubSubError> {
        self.check_node(node)?;
        Ok(self.sim.with_node(node, |n, ctx| {
            n.app_call(ctx, |app, svc| app.unsubscribe(id, svc))
        }))
    }

    /// Publishes an event from `node`.
    ///
    /// # Errors
    ///
    /// [`PubSubError::UnknownNode`] when `node` is out of bounds;
    /// [`PubSubError::DimensionMismatch`] when the event carries a
    /// different number of attribute values than the network's space.
    pub fn publish(&mut self, node: NodeIdx, event: Event) -> Result<EventId, PubSubError> {
        self.check_node(node)?;
        let expected = self.cfg.space.dims();
        if event.dims() != expected {
            return Err(PubSubError::DimensionMismatch {
                expected,
                got: event.dims(),
            });
        }
        Ok(self.sim.with_node(node, |n, ctx| {
            n.app_call(ctx, |app, svc| app.publish(event, svc))
        }))
    }

    /// The active observability mode.
    pub fn observability(&self) -> ObsMode {
        self.sim.metrics().obs().mode()
    }

    /// Switches observability (causal tracing + stage histograms) on or
    /// off; observation never alters protocol behavior.
    pub fn set_observability(&mut self, mode: ObsMode) {
        self.sim.metrics_mut().obs_mut().set_mode(mode);
    }

    /// Advances the simulation to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Advances the simulation by `secs` seconds.
    pub fn run_for_secs(&mut self, secs: u64) {
        let t = self.sim.now() + SimDuration::from_secs(secs);
        self.sim.run_until(t);
    }

    /// Peak stored-subscription count per node.
    pub fn peak_stored_counts(&self) -> Vec<usize> {
        self.sim
            .nodes()
            .map(|(_, n)| n.app().store().peak())
            .collect()
    }
}

impl PastryPubSubNetworkBuilder {
    /// Sets the node count (validated in
    /// [`build`](PastryPubSubNetworkBuilder::build)).
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Sets the observability mode the network starts with (default:
    /// [`ObsMode::Off`]).
    pub fn observability(mut self, mode: ObsMode) -> Self {
        self.obs = mode;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.net.seed = seed;
        self
    }

    /// Replaces the Pastry overlay configuration.
    pub fn pastry(mut self, pastry: PastryConfig) -> Self {
        self.pastry = pastry;
        self
    }

    /// Replaces the pub/sub configuration.
    pub fn pubsub(mut self, pubsub: PubSubConfig) -> Self {
        self.pubsub = pubsub;
        self
    }

    /// Builds the deployment, validating the configuration first.
    ///
    /// # Errors
    ///
    /// The same [`ConfigError`] conditions as
    /// [`cbps::PubSubNetworkBuilder::build`], with the Pastry leaf-set
    /// length standing in for the successor-list length.
    pub fn build(self) -> Result<PastryPubSubNetwork, ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::NoNodes);
        }
        if self.pubsub.mapping.key_space() != self.pastry.space {
            return Err(ConfigError::KeySpaceMismatch {
                mapping_bits: self.pubsub.mapping.key_space().bits(),
                overlay_bits: self.pastry.space.bits(),
            });
        }
        if self.pubsub.replication > self.pastry.leaf_len {
            return Err(ConfigError::ReplicationTooLarge {
                replication: self.pubsub.replication,
                succ_list_len: self.pastry.leaf_len,
            });
        }
        match self.pubsub.notify_mode {
            cbps::NotifyMode::Buffered { period } | cbps::NotifyMode::Collecting { period }
                if period.is_zero() =>
            {
                return Err(ConfigError::ZeroFlushPeriod)
            }
            _ => {}
        }
        Ok(self.build_unchecked())
    }

    /// Builds without validating — the escape hatch mirroring
    /// [`cbps::PubSubNetworkBuilder::build_unchecked`].
    ///
    /// # Panics
    ///
    /// Panics on a zero-node network.
    pub fn build_unchecked(self) -> PastryPubSubNetwork {
        assert!(self.nodes > 0, "a network needs at least one node");
        let cfg = self.pubsub.into_shared();
        let apps: Vec<PubSubNode> = (0..self.nodes)
            .map(|_| PubSubNode::new(Arc::clone(&cfg)))
            .collect();
        let (sim, ring) = build_pastry_stable(self.net, self.pastry, apps);
        let mut net = PastryPubSubNetwork { sim, ring, cfg };
        if self.obs.enabled() {
            net.set_observability(self.obs);
        }
        net
    }
}

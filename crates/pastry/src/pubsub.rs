//! The CB-pub/sub layer running over Pastry — the paper's portability
//! claim (§3.1: the infrastructure "can use any overlay routing scheme"),
//! made concrete: the *same* [`PubSubNode`] logic, hosted by a different
//! overlay through the overlay-neutral `OverlayServices` surface.

use std::sync::Arc;

use cbps::{
    DeliveredNote, Event, EventId, PubSubConfig, PubSubMsg, PubSubNode, PubSubTimer, SubId,
    Subscription,
};
use cbps_overlay::{Delivery, Peer, RingView};
use cbps_sim::{Metrics, NetConfig, NodeIdx, SimDuration, SimTime, Simulator};

use crate::builder::build_pastry_stable;
use crate::node::{PastryApp, PastryNode, PastrySvc};
use crate::state::PastryConfig;

impl PastryApp for PubSubNode {
    type Payload = PubSubMsg;
    type Timer = PubSubTimer;

    fn on_deliver(
        &mut self,
        payload: PubSubMsg,
        _delivery: Delivery,
        svc: &mut PastrySvc<'_, '_, PubSubMsg, PubSubTimer>,
    ) {
        self.handle_deliver(payload, svc);
    }

    fn on_direct(
        &mut self,
        from: Peer,
        payload: PubSubMsg,
        svc: &mut PastrySvc<'_, '_, PubSubMsg, PubSubTimer>,
    ) {
        self.handle_direct_msg(from, payload, svc);
    }

    fn on_timer(
        &mut self,
        timer: PubSubTimer,
        svc: &mut PastrySvc<'_, '_, PubSubMsg, PubSubTimer>,
    ) {
        self.handle_timer_fired(timer, svc);
    }
}

/// A complete pub/sub deployment over a static Pastry overlay — the
/// Pastry twin of [`cbps::PubSubNetwork`].
///
/// # Examples
///
/// ```
/// use cbps::{Event, Subscription};
/// use cbps_pastry::PastryPubSubNetwork;
///
/// let mut net = PastryPubSubNetwork::builder().nodes(40).seed(3).build();
/// let space = net.config().space.clone();
/// let sub = Subscription::builder(&space).range("a0", 0, 100_000)?.build()?;
/// net.subscribe(1, sub, None);
/// net.run_for_secs(10);
/// net.publish(7, Event::new(&space, vec![50_000, 1, 2, 3])?);
/// net.run_for_secs(10);
/// assert_eq!(net.delivered(1).len(), 1);
/// # Ok::<(), cbps::PubSubError>(())
/// ```
#[derive(Debug)]
pub struct PastryPubSubNetwork {
    sim: Simulator<PastryNode<PubSubNode>>,
    ring: RingView,
    cfg: Arc<PubSubConfig>,
}

/// Builder for [`PastryPubSubNetwork`].
#[derive(Clone, Debug)]
pub struct PastryPubSubNetworkBuilder {
    nodes: usize,
    net: NetConfig,
    pastry: PastryConfig,
    pubsub: PubSubConfig,
}

impl PastryPubSubNetwork {
    /// Starts configuring a Pastry-hosted deployment.
    pub fn builder() -> PastryPubSubNetworkBuilder {
        PastryPubSubNetworkBuilder {
            nodes: 100,
            net: NetConfig::new(0),
            pastry: PastryConfig::paper_default(),
            pubsub: PubSubConfig::paper_default(),
        }
    }

    /// The shared pub/sub configuration.
    pub fn config(&self) -> &PubSubConfig {
        &self.cfg
    }

    /// The global ring view.
    pub fn ring(&self) -> &RingView {
        &self.ring
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// `false`: construction requires at least one node.
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// The pub/sub state of a node.
    pub fn app(&self, node: NodeIdx) -> &PubSubNode {
        self.sim.node(node).app()
    }

    /// Notifications received by `node`.
    pub fn delivered(&self, node: NodeIdx) -> &[DeliveredNote] {
        self.app(node).delivered()
    }

    /// Issues a subscription from `node`.
    pub fn subscribe(
        &mut self,
        node: NodeIdx,
        sub: Subscription,
        ttl: Option<SimDuration>,
    ) -> SubId {
        self.sim.with_node(node, |n, ctx| {
            n.app_call(ctx, |app, svc| app.subscribe(sub, ttl, svc))
        })
    }

    /// Withdraws a subscription previously issued by `node`.
    pub fn unsubscribe(&mut self, node: NodeIdx, id: SubId) -> bool {
        self.sim.with_node(node, |n, ctx| {
            n.app_call(ctx, |app, svc| app.unsubscribe(id, svc))
        })
    }

    /// Publishes an event from `node`.
    pub fn publish(&mut self, node: NodeIdx, event: Event) -> EventId {
        self.sim.with_node(node, |n, ctx| {
            n.app_call(ctx, |app, svc| app.publish(event, svc))
        })
    }

    /// Advances the simulation to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Advances the simulation by `secs` seconds.
    pub fn run_for_secs(&mut self, secs: u64) {
        let t = self.sim.now() + SimDuration::from_secs(secs);
        self.sim.run_until(t);
    }

    /// Peak stored-subscription count per node.
    pub fn peak_stored_counts(&self) -> Vec<usize> {
        self.sim
            .nodes()
            .map(|(_, n)| n.app().store().peak())
            .collect()
    }
}

impl PastryPubSubNetworkBuilder {
    /// Sets the node count.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn nodes(mut self, n: usize) -> Self {
        assert!(n > 0, "a network needs at least one node");
        self.nodes = n;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.net.seed = seed;
        self
    }

    /// Replaces the Pastry overlay configuration.
    pub fn pastry(mut self, pastry: PastryConfig) -> Self {
        self.pastry = pastry;
        self
    }

    /// Replaces the pub/sub configuration.
    pub fn pubsub(mut self, pubsub: PubSubConfig) -> Self {
        self.pubsub = pubsub;
        self
    }

    /// Builds the deployment.
    ///
    /// # Panics
    ///
    /// Panics if the pub/sub mapping's key space differs from the
    /// overlay's, or the replication factor exceeds the leaf-set length.
    pub fn build(self) -> PastryPubSubNetwork {
        assert_eq!(
            self.pubsub.mapping.key_space(),
            self.pastry.space,
            "pub/sub mapping and overlay must share one key space"
        );
        assert!(
            self.pubsub.replication <= self.pastry.leaf_len,
            "replication factor exceeds the leaf-set length"
        );
        let cfg = self.pubsub.into_shared();
        let apps: Vec<PubSubNode> = (0..self.nodes)
            .map(|_| PubSubNode::new(Arc::clone(&cfg)))
            .collect();
        let (sim, ring) = build_pastry_stable(self.net, self.pastry, apps);
        PastryPubSubNetwork { sim, ring, cfg }
    }
}

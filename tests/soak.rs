//! Long-run soak: interleaved subscribe / unsubscribe / publish traffic
//! with TTLs, checked against the oracle with propagation-window
//! tolerance:
//!
//! * every delivery must be justified (the pair is expected under the
//!   *loose* activity window that extends subscription activity by the
//!   propagation bound on both sides);
//! * every pair expected under the *strict* window (subscription active
//!   with margin around the publication) must be delivered;
//! * no duplicates, nothing misrouted.

use std::collections::BTreeSet;

use cbps::{EventId, MappingKind, Primitive, PubSubConfig, PubSubNetwork, SubId, Subscription};
use cbps_rng::Rng;
use cbps_sim::{NetConfig, SimDuration, SimTime};
use cbps_workload::{WorkloadConfig, WorkloadGen};

/// Upper bound on end-to-end propagation (hops × delay with slack).
const MARGIN: SimDuration = SimDuration::from_secs(10);

struct SubRecord {
    id: SubId,
    sub: Subscription,
    node: usize,
    issued: SimTime,
    /// When the rendezvous stops serving it (TTL expiry or unsubscription).
    retired: SimTime,
}

fn soak(kind: MappingKind, primitive: Primitive, seed: u64) {
    let nodes = 60;
    let mut net = PubSubNetwork::builder()
        .nodes(nodes)
        .net_config(NetConfig::new(seed))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(kind)
                .with_primitive(primitive),
        )
        .build()
        .expect("valid network configuration");
    let space = net.config().space.clone();
    let wl = WorkloadConfig::paper_default(nodes, 4).with_matching_probability(1.0);
    let mut gen = WorkloadGen::new(space.clone(), wl, seed);
    let mut rng = Rng::seed_from_u64(seed ^ 0xABCD);

    let mut subs: Vec<SubRecord> = Vec::new();
    let mut pubs: Vec<(EventId, cbps::Event, SimTime)> = Vec::new();

    // 400 steps of mixed traffic, 5 simulated seconds apart.
    for step in 0..400u64 {
        let now = SimTime::from_secs(step * 5);
        net.run_until(now);
        match rng.gen_range(0u32..10) {
            // 30%: new subscription, sometimes with a TTL.
            0..=2 => {
                let sub = gen.gen_subscription();
                let node = rng.gen_range(0..nodes);
                let ttl = if rng.gen_bool(0.4) {
                    Some(SimDuration::from_secs(rng.gen_range(100u64..600)))
                } else {
                    None
                };
                let id = net.subscribe(node, sub.clone(), ttl).unwrap();
                let retired = ttl.map(|d| now + d).unwrap_or(SimTime::MAX);
                subs.push(SubRecord {
                    id,
                    sub,
                    node,
                    issued: now,
                    retired,
                });
            }
            // 10%: unsubscribe a random live subscription.
            3 => {
                let live: Vec<usize> = subs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.retired > now)
                    .map(|(i, _)| i)
                    .collect();
                if !live.is_empty() {
                    let k = live[rng.gen_range(0..live.len())];
                    let rec = &subs[k];
                    if net.unsubscribe(rec.node, rec.id).unwrap() {
                        subs[k].retired = subs[k].retired.min(now);
                    }
                }
            }
            // 60%: publish (seeded from a live subscription when possible).
            _ => {
                let live: Vec<&SubRecord> = subs.iter().filter(|r| r.retired > now).collect();
                let event = if live.is_empty() {
                    gen.gen_random_event()
                } else {
                    let r = live[rng.gen_range(0..live.len())];
                    gen.gen_matching_event(&r.sub)
                };
                let node = rng.gen_range(0..nodes);
                let id = net.publish(node, event.clone()).unwrap();
                pubs.push((id, event, now));
            }
        }
    }
    net.run_for_secs(300);

    // Expected sets under strict and loose windows.
    let mut strict: BTreeSet<(SubId, EventId)> = BTreeSet::new();
    let mut loose: BTreeSet<(SubId, EventId)> = BTreeSet::new();
    for (eid, event, at) in &pubs {
        for r in &subs {
            if !r.sub.matches(event) {
                continue;
            }
            if r.issued + MARGIN <= *at && (r.retired == SimTime::MAX || *at + MARGIN <= r.retired)
            {
                strict.insert((r.id, *eid));
            }
            if r.issued <= *at + MARGIN && (r.retired == SimTime::MAX || r.retired + MARGIN >= *at)
            {
                loose.insert((r.id, *eid));
            }
        }
    }

    // Gather deliveries; check justification and uniqueness.
    let mut got: BTreeSet<(SubId, EventId)> = BTreeSet::new();
    for i in 0..nodes {
        for note in net.delivered(i) {
            assert_eq!(note.sub_id.node(), i, "misrouted notification");
            assert!(
                got.insert((note.sub_id, note.event_id)),
                "duplicate delivery"
            );
        }
    }
    for pair in &got {
        assert!(
            loose.contains(pair),
            "{kind}/{primitive:?}: unjustified delivery {pair:?}"
        );
    }
    for pair in &strict {
        assert!(
            got.contains(pair),
            "{kind}/{primitive:?}: missed guaranteed delivery {pair:?}"
        );
    }
    assert!(
        !strict.is_empty(),
        "soak produced no guaranteed matches — workload misconfigured"
    );
    assert_eq!(net.metrics().counter("notifications.misrouted"), 0);
}

#[test]
fn soak_mapping1_mcast() {
    soak(MappingKind::AttributeSplit, Primitive::MCast, 301);
}

#[test]
fn soak_mapping2_mcast() {
    soak(MappingKind::KeySpaceSplit, Primitive::MCast, 302);
}

#[test]
fn soak_mapping3_unicast() {
    soak(MappingKind::SelectiveAttribute, Primitive::Unicast, 303);
}

#[test]
fn soak_mapping3_mcast() {
    soak(MappingKind::SelectiveAttribute, Primitive::MCast, 304);
}

//! End-to-end scheduler parity: a full pub/sub deployment — overlay,
//! mappings, notification pipeline, observability — must produce
//! bit-identical results under the heap and the timing-wheel scheduler.
//! The sim-crate equivalence suite checks raw event ordering; this one
//! checks everything layered on top of it, including the rendered
//! experiment tables and the distilled `cbps-report/v2` observability
//! report that `ci.sh` diffs on every run.

use cbps::{MappingKind, NotifyMode, PubSubConfig, PubSubNetwork, SubId};
use cbps_bench::report::{ExperimentReport, ObsReport, RunReport};
use cbps_sim::{NetConfig, ObsMode, SchedulerKind, SimDuration, TrafficClass};
use cbps_workload::{WorkloadConfig, WorkloadGen};

/// Replays a seeded workload under `kind` and renders every observable
/// output as one JSON document (wall time pinned so only real signal is
/// compared).
fn run_report(kind: SchedulerKind, seed: u64) -> String {
    let mut net = PubSubNetwork::builder()
        .nodes(40)
        .net_config(NetConfig::new(seed).with_scheduler(kind))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_notify_mode(NotifyMode::Collecting {
                    period: SimDuration::from_secs(10),
                })
                .with_replication(1),
        )
        .observability(ObsMode::Full)
        .build()
        .expect("valid network configuration");
    let wl = WorkloadConfig::paper_default(40, 4)
        .with_counts(80, 160)
        .with_sub_ttl(Some(SimDuration::from_secs(300)));
    let mut gen = WorkloadGen::new(net.config().space.clone(), wl, seed);
    let trace = gen.gen_trace();
    trace.replay(&mut net);
    // Crash a node and join a fresh one mid-run so failure handling and
    // state transfer are part of the comparison.
    net.crash(35);
    net.run_for_secs(60);
    net.join_new_node("parity-joiner", 0);
    net.run_until(trace.end_time() + SimDuration::from_secs(300));

    let mut deliveries: Vec<(usize, SubId, cbps::EventId)> = Vec::new();
    for idx in 0..40 {
        for note in net.delivered(idx) {
            deliveries.push((idx, note.sub_id, note.event_id));
        }
    }
    let messages: Vec<u64> = [
        TrafficClass::SUBSCRIPTION,
        TrafficClass::PUBLICATION,
        TrafficClass::NOTIFICATION,
        TrafficClass::COLLECT,
        TrafficClass::STATE_TRANSFER,
    ]
    .iter()
    .map(|&c| net.metrics().messages(c))
    .collect();
    let matches = net.metrics().counter("matches");
    let delivered = net.metrics().counter("notifications.delivered");
    let peaks: Vec<u64> = net
        .peak_stored_counts()
        .into_iter()
        .map(|p| p as u64)
        .collect();
    let sim = net.sim_mut();
    let events = sim.events_processed();
    let peak_queue_depth = sim.queue_peak() as u64;
    let obs = std::mem::take(net.metrics_mut().obs_mut());
    let report = RunReport {
        scale: "parity".to_owned(),
        jobs: 1,
        observability: ObsMode::Full.name().to_owned(),
        // Deliberately NOT kind.name(): the scheduler must be the only
        // difference between the two runs, so it stays out of the diff.
        scheduler: "under-test".to_owned(),
        shards: 1,
        match_engine: "counting".to_owned(),
        rendezvous: "static".to_owned(),
        overlay: "chord".to_owned(),
        experiments: vec![ExperimentReport {
            name: format!(
                "parity seed {seed}: {matches} matches, {delivered} delivered, \
                 msgs {messages:?}, deliveries {deliveries:?}"
            ),
            wall_secs: 0.0,
            events,
            peak_queue_depth,
            obs: Some(ObsReport::distill(&obs, &peaks)),
            alloc: None,
        }],
    };
    report.to_json()
}

#[test]
fn pubsub_deployment_is_scheduler_independent() {
    for seed in [3u64, 17] {
        let heap = run_report(SchedulerKind::Heap, seed);
        let wheel = run_report(SchedulerKind::Wheel, seed);
        assert_eq!(
            heap, wheel,
            "seed {seed}: heap and wheel runs produced different reports"
        );
        // Guard against a degenerate workload that compared nothing.
        assert!(heap.contains("\"events\":"), "report missing event count");
    }
}

/// The experiment harness path: the runner's process-wide scheduler knob
/// must not change a single byte of a rendered experiment table. Kept as
/// one test because the knob is global to the process.
#[test]
fn experiment_tables_are_scheduler_independent() {
    let render = |kind: SchedulerKind| {
        cbps_bench::runner::set_scheduler(kind);
        let tables = cbps_bench::experiments::run_named("route", cbps_bench::Scale::Quick)
            .expect("route is a known experiment");
        let out: Vec<String> = tables.iter().map(|t| t.render()).collect();
        out.join("\n")
    };
    let heap = render(SchedulerKind::Heap);
    let wheel = render(SchedulerKind::Wheel);
    cbps_bench::runner::set_scheduler(SchedulerKind::default());
    assert_eq!(heap, wheel, "route tables differ between schedulers");
}

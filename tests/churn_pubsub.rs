//! Pub/sub-level dynamics: state transfer on join and graceful leave,
//! replica promotion after crashes, and continued delivery under churn
//! (§4.1's self-configuration claims).

use cbps::{Event, MappingKind, PubSubConfig, PubSubNetwork, Subscription};
use cbps_overlay::OverlayConfig;
use cbps_sim::NetConfig;

fn maintained(nodes: usize, replication: usize, seed: u64) -> PubSubNetwork {
    PubSubNetwork::builder()
        .nodes(nodes)
        .net_config(NetConfig::new(seed))
        .overlay(OverlayConfig::paper_default().with_maintenance(true))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_replication(replication),
        )
        .build()
        .expect("valid network configuration")
}

/// Total primary copies of a subscription across alive nodes.
fn primary_copies(net: &PubSubNetwork, id: cbps::SubId) -> usize {
    (0..net.len())
        .filter(|&i| net.app(i).store().get(id).is_some())
        .count()
}

#[test]
fn graceful_leave_hands_over_subscriptions() {
    let mut net = maintained(40, 0, 21);
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a0", 200_000, 260_000)
        .unwrap()
        .build()
        .unwrap();
    let id = net.subscribe(1, sub, None).unwrap();
    net.run_for_secs(60);
    let before = primary_copies(&net, id);
    assert!(before >= 1);

    // The original rendezvous nodes leave, one at a time — a leaving node
    // hands its state to its live successor, so sequential departures must
    // never lose it. (Simultaneous departures of ring-adjacent nodes need
    // replication; see the crash tests.)
    let holders: Vec<usize> = (0..net.len())
        .filter(|&i| i != 1 && net.app(i).store().get(id).is_some())
        .collect();
    assert!(!holders.is_empty());
    for h in &holders {
        net.leave(*h);
        net.run_for_secs(60);
    }

    // The subscription must still be stored somewhere alive, and a
    // matching event must still reach node 1.
    let alive_copies = (0..net.len())
        .filter(|&i| i != 1)
        .filter(|&i| net.is_alive(i))
        .filter(|&i| net.app(i).store().get(id).is_some())
        .count();
    assert!(
        alive_copies >= 1 || net.app(1).store().get(id).is_some(),
        "graceful leave lost the subscription"
    );

    let publisher = (0..net.len())
        .find(|&i| i != 1 && net.is_alive(i))
        .expect("some node besides the subscriber survives");
    net.publish(
        publisher,
        Event::new(&space, vec![230_000, 1, 2, 3]).unwrap(),
    )
    .unwrap();
    net.run_for_secs(120);
    assert_eq!(
        net.delivered(1).len(),
        1,
        "delivery broke after graceful leaves"
    );
}

#[test]
fn crash_with_replication_preserves_delivery() {
    let mut net = maintained(50, 2, 22);
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a2", 500_000, 560_000)
        .unwrap()
        .build()
        .unwrap();
    let id = net.subscribe(0, sub, None).unwrap();
    net.run_for_secs(60);

    // Crash every primary holder (other than the subscriber).
    let holders: Vec<usize> = (1..net.len())
        .filter(|&i| net.app(i).store().get(id).is_some())
        .collect();
    assert!(!holders.is_empty());
    for h in &holders {
        net.crash(*h);
    }
    // Stabilization detects the failures; heirs promote their replicas.
    net.run_for_secs(240);
    assert!(net.metrics().counter("replicas.promoted") >= 1);

    net.publish(3, Event::new(&space, vec![1, 2, 530_000, 4]).unwrap())
        .unwrap();
    net.run_for_secs(120);
    assert_eq!(
        net.delivered(0).len(),
        1,
        "crash of all primaries lost delivery despite replication"
    );
}

#[test]
fn crash_without_replication_loses_subscriptions() {
    let mut net = maintained(50, 0, 23);
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a2", 500_000, 560_000)
        .unwrap()
        .build()
        .unwrap();
    let id = net.subscribe(0, sub, None).unwrap();
    net.run_for_secs(60);
    let holders: Vec<usize> = (1..net.len())
        .filter(|&i| net.app(i).store().get(id).is_some())
        .collect();
    for h in &holders {
        net.crash(*h);
    }
    net.run_for_secs(240);
    net.publish(3, Event::new(&space, vec![1, 2, 530_000, 4]).unwrap())
        .unwrap();
    net.run_for_secs(120);
    // Documented failure mode: without replication the state is gone.
    assert!(
        net.delivered(0).is_empty(),
        "expected the un-replicated subscription to be lost"
    );
}

#[test]
fn joining_node_pulls_rendezvous_state() {
    let mut net = maintained(30, 0, 24);
    let space = net.config().space.clone();
    // Blanket the whole ring so every node (and any joiner) is a
    // rendezvous: a0 constrained to the full domain.
    let sub = Subscription::builder(&space)
        .range("a0", 0, 1_000_000)
        .unwrap()
        .range("a1", 0, 499_999)
        .unwrap()
        .build()
        .unwrap();
    net.subscribe(2, sub, None).unwrap();
    net.run_for_secs(60);

    let newcomer = net.join_new_node("joiner-1", 0);
    net.run_for_secs(180); // join + stabilize + state push

    assert!(
        !net.app(newcomer).store().is_empty(),
        "joiner did not receive the rendezvous state for its arc"
    );

    // An event whose a0-key lands on the newcomer still notifies node 2.
    // Sweep several events so at least one maps to the newcomer's arc.
    for i in 0..16u64 {
        net.publish(
            5,
            Event::new(&space, vec![i * 61_000 + 3, 100_000, 1, 2]).unwrap(),
        )
        .unwrap();
        net.run_for_secs(10);
    }
    net.run_for_secs(120);
    assert_eq!(
        net.delivered(2).len(),
        16,
        "deliveries lost around the join"
    );
}

#[test]
fn unsubscribe_cleans_replicas_too() {
    let mut net = maintained(40, 2, 25);
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a3", 100_000, 140_000)
        .unwrap()
        .build()
        .unwrap();
    let id = net.subscribe(4, sub, None).unwrap();
    net.run_for_secs(60);
    let replicas_before: usize = (0..net.len()).map(|i| net.app(i).replica_count()).sum();
    assert!(replicas_before >= 1);

    net.unsubscribe(4, id).unwrap();
    net.run_for_secs(60);
    assert_eq!(
        primary_copies(&net, id),
        0,
        "primaries survived unsubscription"
    );
    let replicas_after: usize = (0..net.len()).map(|i| net.app(i).replica_count()).sum();
    assert_eq!(replicas_after, 0, "replicas survived unsubscription");
}

//! Reproducibility: the same seed and configuration must produce
//! bit-identical metrics and deliveries; different seeds must not.

use cbps::{MappingKind, Primitive, PubSubConfig, PubSubNetwork};
use cbps_sim::{NetConfig, SimDuration, TrafficClass};
use cbps_workload::{WorkloadConfig, WorkloadGen};

fn fingerprint(seed: u64) -> (u64, u64, u64, u64, Vec<usize>) {
    let mut net = PubSubNetwork::builder()
        .nodes(50)
        .net_config(NetConfig::new(seed))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_primitive(Primitive::Unicast),
        )
        .build();
    let wl = WorkloadConfig::paper_default(50, 4)
        .with_counts(60, 120)
        .with_sub_ttl(Some(SimDuration::from_secs(200)));
    let mut gen = WorkloadGen::new(net.config().space.clone(), wl, seed);
    let trace = gen.gen_trace();
    trace.replay(&mut net);
    net.run_until(trace.end_time() + SimDuration::from_secs(300));
    let m = net.metrics();
    (
        m.total_messages(),
        m.messages(TrafficClass::NOTIFICATION),
        m.counter("matches"),
        m.counter("notifications.delivered"),
        net.peak_stored_counts(),
    )
}

#[test]
fn identical_seeds_are_bit_identical() {
    assert_eq!(fingerprint(1234), fingerprint(1234));
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    assert_ne!(a, b, "two seeds produced identical runs — RNG plumbing broken?");
}

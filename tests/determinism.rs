//! Reproducibility: the same seed and configuration must produce
//! bit-identical metrics and deliveries; different seeds must not; and
//! the multi-core experiment runner must not change any result — each
//! simulation is single-threaded, so farming independent runs out to a
//! worker pool only reorders wall-clock execution, never outcomes.

use cbps::{MappingKind, Primitive, PubSubConfig, PubSubNetwork, SubId};
use cbps_sim::{NetConfig, SimDuration, TrafficClass};
use cbps_workload::{WorkloadConfig, WorkloadGen};

type Fingerprint = (u64, u64, u64, u64, Vec<usize>, Vec<(SubId, cbps::EventId)>);

fn fingerprint(seed: u64) -> Fingerprint {
    let mut net = PubSubNetwork::builder()
        .nodes(50)
        .net_config(NetConfig::new(seed))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_primitive(Primitive::Unicast),
        )
        .build()
        .expect("valid network configuration");
    let wl = WorkloadConfig::paper_default(50, 4)
        .with_counts(60, 120)
        .with_sub_ttl(Some(SimDuration::from_secs(200)));
    let mut gen = WorkloadGen::new(net.config().space.clone(), wl, seed);
    let trace = gen.gen_trace();
    trace.replay(&mut net);
    net.run_until(trace.end_time() + SimDuration::from_secs(300));
    let mut delivered: Vec<(SubId, cbps::EventId)> = (0..net.len())
        .flat_map(|i| net.delivered(i).iter().map(|n| (n.sub_id, n.event_id)))
        .collect();
    delivered.sort_unstable();
    let m = net.metrics();
    (
        m.total_messages(),
        m.messages(TrafficClass::NOTIFICATION),
        m.counter("matches"),
        m.counter("notifications.delivered"),
        net.peak_stored_counts(),
        delivered,
    )
}

#[test]
fn identical_seeds_are_bit_identical() {
    assert_eq!(fingerprint(1234), fingerprint(1234));
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    assert_ne!(
        a, b,
        "two seeds produced identical runs — RNG plumbing broken?"
    );
}

/// The same sweep run serially and with `--jobs 4` yields identical
/// per-point fingerprints in identical order.
#[test]
fn parallel_runner_matches_serial() {
    let seeds: Vec<u64> = vec![11, 22, 33, 44, 55, 66];
    cbps_bench::runner::set_jobs(1);
    let serial = cbps_bench::runner::parallel_map(seeds.clone(), fingerprint);
    cbps_bench::runner::set_jobs(4);
    let parallel = cbps_bench::runner::parallel_map(seeds, fingerprint);
    cbps_bench::runner::set_jobs(1);
    assert_eq!(
        serial, parallel,
        "worker pool changed simulation results — runs are not independent"
    );
}

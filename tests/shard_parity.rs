//! End-to-end shard parity: a full pub/sub deployment — overlay, mappings,
//! notification pipeline, churn — must deliver exactly the same
//! notifications, count exactly the same messages and process exactly the
//! same events whether the event loop runs single-threaded or split into
//! conservative-lookahead shards. The sim-crate suite checks raw event
//! ordering on toy nodes; this one checks everything layered on top,
//! including the rendered experiment tables `ci.sh` diffs on every run.
//!
//! Deliberately NOT compared: `queue_peak` and the `queue.depth`
//! observability histogram. Queue depth is sampled every 64th event *per
//! shard*, so the sampling cadence legitimately changes with the shard
//! count even though the event set does not.

use cbps::{MappingKind, NotifyMode, PubSubConfig, PubSubNetwork, SubId};
use cbps_sim::{SimDuration, TrafficClass};
use cbps_workload::{WorkloadConfig, WorkloadGen};

/// Replays a seeded workload with the event loop split into `shards`
/// shards and renders every shard-invariant observable as one string.
fn run_digest(shards: usize, seed: u64) -> String {
    let mut net = PubSubNetwork::builder()
        .nodes(40)
        .seed(seed)
        .shards(shards)
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_notify_mode(NotifyMode::Collecting {
                    period: SimDuration::from_secs(10),
                })
                .with_replication(1),
        )
        .build()
        .expect("valid network configuration");
    let wl = WorkloadConfig::paper_default(40, 4)
        .with_counts(80, 160)
        .with_sub_ttl(Some(SimDuration::from_secs(300)));
    let mut gen = WorkloadGen::new(net.config().space.clone(), wl, seed);
    let trace = gen.gen_trace();
    trace.replay(&mut net);
    // Crash a node and join a fresh one mid-run so failure handling, state
    // transfer and the sharded engine's queue rebuild are all compared.
    net.crash(35);
    net.run_for_secs(60);
    net.join_new_node("parity-joiner", 0);
    net.run_until(trace.end_time() + SimDuration::from_secs(300));

    let mut deliveries: Vec<(usize, SubId, cbps::EventId)> = Vec::new();
    for idx in 0..40 {
        for note in net.delivered(idx) {
            deliveries.push((idx, note.sub_id, note.event_id));
        }
    }
    let messages: Vec<u64> = [
        TrafficClass::SUBSCRIPTION,
        TrafficClass::PUBLICATION,
        TrafficClass::NOTIFICATION,
        TrafficClass::COLLECT,
        TrafficClass::STATE_TRANSFER,
    ]
    .iter()
    .map(|&c| net.metrics().messages(c))
    .collect();
    let matches = net.metrics().counter("matches");
    let delivered = net.metrics().counter("notifications.delivered");
    let peaks = net.peak_stored_counts();
    let events = net.sim_mut().events_processed();
    format!(
        "matches {matches} delivered {delivered} events {events} \
         msgs {messages:?} peaks {peaks:?} deliveries {deliveries:?}"
    )
}

#[test]
fn pubsub_deployment_is_shard_count_independent() {
    for seed in [3u64, 17] {
        let single = run_digest(1, seed);
        for shards in [2usize, 4] {
            let sharded = run_digest(shards, seed);
            assert_eq!(
                single, sharded,
                "seed {seed}: {shards}-shard run diverged from single-threaded"
            );
        }
        // Guard against a degenerate workload that compared nothing.
        assert!(
            single.contains("delivered") && !single.contains("deliveries []"),
            "workload delivered nothing: {single}"
        );
    }
}

/// The experiment harness path: the runner's process-wide shard knob must
/// not change a single byte of a rendered experiment table. Kept as one
/// test because the knob is global to the process.
#[test]
fn experiment_tables_are_shard_count_independent() {
    let render = |shards: usize| {
        cbps_bench::runner::set_shards(shards);
        let tables = cbps_bench::experiments::run_named("route", cbps_bench::Scale::Quick)
            .expect("route is a known experiment");
        let out: Vec<String> = tables.iter().map(|t| t.render()).collect();
        out.join("\n")
    };
    let single = render(1);
    let sharded = render(4);
    cbps_bench::runner::set_shards(1);
    assert_eq!(single, sharded, "route tables differ between shard counts");
}

//! End-to-end exactly-once logical delivery against the centralized
//! oracle, across all mappings × primitives × notification modes, on
//! randomized workloads.

use cbps::{MappingKind, NotifyMode, Primitive, PubSubConfig, PubSubNetwork, SubId};
use cbps_sim::{NetConfig, SimDuration};
use cbps_workload::{OpKind, Trace, WorkloadConfig, WorkloadGen};
use std::collections::BTreeSet;

fn network(
    kind: MappingKind,
    primitive: Primitive,
    notify: NotifyMode,
    seed: u64,
) -> PubSubNetwork {
    PubSubNetwork::builder()
        .nodes(60)
        .net_config(NetConfig::new(seed))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(kind)
                .with_primitive(primitive)
                .with_notify_mode(notify),
        )
        .build()
        .expect("valid network configuration")
}

/// Replays a two-phase workload (all subscriptions, then all publications,
/// separated by a quiescence gap) and checks deliveries == oracle truth.
fn check_exactly_once(kind: MappingKind, primitive: Primitive, notify: NotifyMode, seed: u64) {
    let mut net = network(kind, primitive, notify, seed);
    let wl = WorkloadConfig::paper_default(60, 4)
        .with_counts(40, 80)
        .with_matching_probability(0.7);
    let mut gen = WorkloadGen::new(net.config().space.clone(), wl, seed);
    let trace = gen.gen_trace();

    // Phase-separate: issue every subscription first, then publications,
    // so oracle timing is exact.
    let mut sub_ops = Vec::new();
    let mut pub_ops = Vec::new();
    for op in trace.ops() {
        match op.kind {
            OpKind::Subscribe { .. } => sub_ops.push(op.clone()),
            OpKind::Publish { .. } => pub_ops.push(op.clone()),
        }
    }
    let subs = Trace::new(sub_ops);
    let sub_out = subs.replay(&mut net);
    net.run_until(subs.end_time() + SimDuration::from_secs(120));

    let mut oracle = sub_out.oracle.clone();
    let base = net.now();
    for (k, op) in pub_ops.iter().enumerate() {
        net.run_until(base + SimDuration::from_secs(3 * k as u64));
        if let OpKind::Publish { event } = &op.kind {
            let id = net.publish(op.node, event.clone()).unwrap();
            oracle.add_pub(id, event.clone(), net.now());
        }
    }
    net.run_for_secs(600); // drain buffered/collected notifications

    let expected = oracle.expected();
    let mut got: BTreeSet<(SubId, cbps::EventId)> = BTreeSet::new();
    for idx in 0..net.len() {
        for note in net.delivered(idx) {
            assert_eq!(
                note.sub_id.node(),
                idx,
                "notification delivered to the wrong subscriber"
            );
            assert!(
                got.insert((note.sub_id, note.event_id)),
                "duplicate logical delivery of {:?}",
                (note.sub_id, note.event_id)
            );
        }
    }
    assert_eq!(
        got,
        expected,
        "{kind}/{primitive:?}/{notify:?}: delivered set diverges from oracle \
         (got {}, expected {})",
        got.len(),
        expected.len()
    );
}

#[test]
fn exactly_once_mapping1_unicast() {
    check_exactly_once(
        MappingKind::AttributeSplit,
        Primitive::Unicast,
        NotifyMode::Immediate,
        1,
    );
}

#[test]
fn exactly_once_mapping1_mcast() {
    check_exactly_once(
        MappingKind::AttributeSplit,
        Primitive::MCast,
        NotifyMode::Immediate,
        2,
    );
}

#[test]
fn exactly_once_mapping2_unicast() {
    check_exactly_once(
        MappingKind::KeySpaceSplit,
        Primitive::Unicast,
        NotifyMode::Immediate,
        3,
    );
}

#[test]
fn exactly_once_mapping2_mcast() {
    check_exactly_once(
        MappingKind::KeySpaceSplit,
        Primitive::MCast,
        NotifyMode::Immediate,
        4,
    );
}

#[test]
fn exactly_once_mapping3_unicast() {
    check_exactly_once(
        MappingKind::SelectiveAttribute,
        Primitive::Unicast,
        NotifyMode::Immediate,
        5,
    );
}

#[test]
fn exactly_once_mapping3_mcast() {
    check_exactly_once(
        MappingKind::SelectiveAttribute,
        Primitive::MCast,
        NotifyMode::Immediate,
        6,
    );
}

#[test]
fn exactly_once_mapping3_walk() {
    check_exactly_once(
        MappingKind::SelectiveAttribute,
        Primitive::Walk,
        NotifyMode::Immediate,
        7,
    );
}

#[test]
fn exactly_once_with_buffering() {
    check_exactly_once(
        MappingKind::SelectiveAttribute,
        Primitive::MCast,
        NotifyMode::Buffered {
            period: SimDuration::from_secs(5),
        },
        8,
    );
}

#[test]
fn exactly_once_with_collecting() {
    check_exactly_once(
        MappingKind::SelectiveAttribute,
        Primitive::Unicast,
        NotifyMode::Collecting {
            period: SimDuration::from_secs(5),
        },
        9,
    );
}

#[test]
fn exactly_once_mapping1_walk() {
    check_exactly_once(
        MappingKind::AttributeSplit,
        Primitive::Walk,
        NotifyMode::Immediate,
        10,
    );
}

//! End-to-end pool parity: the slab pool that recycles in-flight
//! envelope and timer slots is a pure allocation strategy — switching
//! between [`PoolMode::Reuse`] and the always-allocate [`PoolMode::Fresh`]
//! control must not change a single observable output. A full pub/sub
//! deployment (overlay, mappings, notification pipeline, TTL churn,
//! crash/join) is replayed under both modes and every observable —
//! deliveries, message counts, event totals — must match exactly, at one
//! and at four event-loop shards (slot recycling happens per shard, so
//! both paths are compared). The rendered experiment tables `ci.sh` diffs
//! are covered by the harness-path test below.

use cbps::{MappingKind, NotifyMode, PubSubConfig, PubSubNetwork, SubId};
use cbps_sim::{NetConfig, PoolMode, SimDuration, TrafficClass};
use cbps_workload::{WorkloadConfig, WorkloadGen};

/// Replays a seeded workload under `pool` with `shards` event-loop shards
/// and renders every observable as one string.
fn run_digest(pool: PoolMode, shards: usize, seed: u64) -> String {
    let mut net = PubSubNetwork::builder()
        .nodes(40)
        .net_config(NetConfig::new(seed).with_pool(pool).with_shards(shards))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_notify_mode(NotifyMode::Collecting {
                    period: SimDuration::from_secs(10),
                })
                .with_replication(1),
        )
        .build()
        .expect("valid network configuration");
    let wl = WorkloadConfig::paper_default(40, 4)
        .with_counts(80, 160)
        .with_sub_ttl(Some(SimDuration::from_secs(300)));
    let mut gen = WorkloadGen::new(net.config().space.clone(), wl, seed);
    let trace = gen.gen_trace();
    trace.replay(&mut net);
    // Crash a node and join a fresh one mid-run: churn retires many
    // in-flight slots at once, which is where a generation-check bug in
    // the slab would surface as a divergence.
    net.crash(35);
    net.run_for_secs(60);
    net.join_new_node("parity-joiner", 0);
    net.run_until(trace.end_time() + SimDuration::from_secs(300));

    let mut deliveries: Vec<(usize, SubId, cbps::EventId)> = Vec::new();
    for idx in 0..40 {
        for note in net.delivered(idx) {
            deliveries.push((idx, note.sub_id, note.event_id));
        }
    }
    let messages: Vec<u64> = [
        TrafficClass::SUBSCRIPTION,
        TrafficClass::PUBLICATION,
        TrafficClass::NOTIFICATION,
        TrafficClass::COLLECT,
        TrafficClass::STATE_TRANSFER,
    ]
    .iter()
    .map(|&c| net.metrics().messages(c))
    .collect();
    let matches = net.metrics().counter("matches");
    let delivered = net.metrics().counter("notifications.delivered");
    let peaks = net.peak_stored_counts();
    let events = net.sim_mut().events_processed();
    format!(
        "matches {matches} delivered {delivered} events {events} \
         msgs {messages:?} peaks {peaks:?} deliveries {deliveries:?}"
    )
}

#[test]
fn pubsub_deployment_is_pool_mode_independent() {
    for seed in [3u64, 17] {
        for shards in [1usize, 4] {
            let reuse = run_digest(PoolMode::Reuse, shards, seed);
            let fresh = run_digest(PoolMode::Fresh, shards, seed);
            assert_eq!(
                reuse, fresh,
                "seed {seed}, {shards} shard(s): pooled run diverged from fresh"
            );
            // Guard against a degenerate workload that compared nothing.
            assert!(
                reuse.contains("delivered") && !reuse.contains("deliveries []"),
                "workload delivered nothing: {reuse}"
            );
        }
    }
}

/// The experiment harness path: the runner's process-wide pool knob must
/// not change a single byte of a rendered experiment table. Kept as one
/// test because the knob is global to the process.
#[test]
fn experiment_tables_are_pool_mode_independent() {
    let render = |pool: PoolMode| {
        cbps_bench::runner::set_pool(pool);
        let tables = cbps_bench::experiments::run_named("route", cbps_bench::Scale::Quick)
            .expect("route is a known experiment");
        let out: Vec<String> = tables.iter().map(|t| t.render()).collect();
        out.join("\n")
    };
    let reuse = render(PoolMode::Reuse);
    let fresh = render(PoolMode::Fresh);
    cbps_bench::runner::set_pool(PoolMode::default());
    assert_eq!(reuse, fresh, "route tables differ between pool modes");
}

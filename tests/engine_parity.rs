//! End-to-end matching-engine parity: a full pub/sub deployment —
//! overlay, mappings, notification pipeline, churn — must deliver exactly
//! the same notifications, count exactly the same messages and process
//! exactly the same events whether rendezvous nodes match with the
//! counting index or the sorted index, and whether subscription covering
//! is on or off. The core-crate differential suite checks the engines on
//! raw sub/unsub/event streams; this one checks everything layered on
//! top, including the rendered experiment tables `ci.sh` diffs between
//! `--match-engine counting` and `--match-engine sorted` on every run.

use cbps::{MappingKind, MatchEngineKind, NotifyMode, PubSubConfig, PubSubNetwork, SubId};
use cbps_sim::{SimDuration, TrafficClass};
use cbps_workload::{WorkloadConfig, WorkloadGen};

/// Replays a seeded workload with the given matching engine (and covering
/// switch) and renders every engine-invariant observable as one string.
fn run_digest(engine: MatchEngineKind, covering: bool, seed: u64) -> String {
    let mut net = PubSubNetwork::builder()
        .nodes(40)
        .seed(seed)
        .match_engine(engine)
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_notify_mode(NotifyMode::Collecting {
                    period: SimDuration::from_secs(10),
                })
                .with_replication(1)
                .with_covering(covering),
        )
        .build()
        .expect("valid network configuration");
    let wl = WorkloadConfig::paper_default(40, 4)
        .with_counts(80, 160)
        .with_sub_ttl(Some(SimDuration::from_secs(300)));
    let mut gen = WorkloadGen::new(net.config().space.clone(), wl, seed);
    let trace = gen.gen_trace();
    trace.replay(&mut net);
    // Crash a node and join a fresh one mid-run so replication hand-off
    // and the joiner's engine construction are compared too.
    net.crash(35);
    net.run_for_secs(60);
    net.join_new_node("parity-joiner", 0);
    net.run_until(trace.end_time() + SimDuration::from_secs(300));

    let mut deliveries: Vec<(usize, SubId, cbps::EventId)> = Vec::new();
    for idx in 0..40 {
        for note in net.delivered(idx) {
            deliveries.push((idx, note.sub_id, note.event_id));
        }
    }
    let messages: Vec<u64> = [
        TrafficClass::SUBSCRIPTION,
        TrafficClass::PUBLICATION,
        TrafficClass::NOTIFICATION,
        TrafficClass::COLLECT,
        TrafficClass::STATE_TRANSFER,
    ]
    .iter()
    .map(|&c| net.metrics().messages(c))
    .collect();
    let matches = net.metrics().counter("matches");
    let delivered = net.metrics().counter("notifications.delivered");
    let peaks = net.peak_stored_counts();
    let events = net.sim_mut().events_processed();
    format!(
        "matches {matches} delivered {delivered} events {events} \
         msgs {messages:?} peaks {peaks:?} deliveries {deliveries:?}"
    )
}

#[test]
fn pubsub_deployment_is_match_engine_independent() {
    for seed in [3u64, 17] {
        let baseline = run_digest(MatchEngineKind::Counting, true, seed);
        for (engine, covering) in [
            (MatchEngineKind::Counting, false),
            (MatchEngineKind::Sorted, true),
            (MatchEngineKind::Sorted, false),
        ] {
            let other = run_digest(engine, covering, seed);
            assert_eq!(
                baseline, other,
                "seed {seed}: {engine:?} engine (covering {covering}) diverged \
                 from the counting baseline"
            );
        }
        // Guard against a degenerate workload that compared nothing.
        assert!(
            baseline.contains("delivered") && !baseline.contains("deliveries []"),
            "workload delivered nothing: {baseline}"
        );
    }
}

/// The experiment harness path: the runner's process-wide match-engine
/// knob must not change a single byte of a rendered experiment table.
/// Kept as one test because the knob is global to the process.
#[test]
fn experiment_tables_are_match_engine_independent() {
    let render = |engine: MatchEngineKind| {
        cbps_bench::runner::set_match_engine(engine);
        let tables = cbps_bench::experiments::run_named("fig5", cbps_bench::Scale::Quick)
            .expect("fig5 is a known experiment");
        let out: Vec<String> = tables.iter().map(|t| t.render()).collect();
        out.join("\n")
    };
    let counting = render(MatchEngineKind::Counting);
    let sorted = render(MatchEngineKind::Sorted);
    cbps_bench::runner::set_match_engine(MatchEngineKind::Counting);
    assert_eq!(counting, sorted, "fig5 tables differ between match engines");
}

//! Cross-configuration delivery matrix: partial subscriptions, string
//! attributes, discretization, content-hash event keys, and non-paper
//! event spaces — each exercised end to end.

use cbps::{
    AttributeDef, Event, EventKeyChoice, EventSpace, MappingKind, Primitive, PubSubConfig,
    PubSubNetwork, Subscription,
};
use cbps_sim::NetConfig;

fn net_with(cfg: PubSubConfig, seed: u64) -> PubSubNetwork {
    PubSubNetwork::builder()
        .nodes(50)
        .net_config(NetConfig::new(seed))
        .pubsub(cfg)
        .build()
        .expect("valid network configuration")
}

#[test]
fn partial_subscriptions_deliver_under_every_mapping() {
    for kind in [
        MappingKind::AttributeSplit,
        MappingKind::KeySpaceSplit,
        MappingKind::SelectiveAttribute,
    ] {
        let mut net = net_with(
            PubSubConfig::paper_default()
                .with_mapping(kind)
                .with_primitive(Primitive::MCast),
            31,
        );
        let space = net.config().space.clone();
        // Constrain only a2: every other dimension is a wildcard.
        let sub = Subscription::builder(&space)
            .range("a2", 700_000, 740_000)
            .unwrap()
            .build()
            .unwrap();
        net.subscribe(3, sub, None).unwrap();
        net.run_for_secs(60);
        net.publish(9, Event::new(&space, vec![5, 6, 720_000, 7]).unwrap())
            .unwrap();
        net.publish(9, Event::new(&space, vec![5, 6, 100_000, 7]).unwrap())
            .unwrap();
        net.run_for_secs(60);
        assert_eq!(
            net.delivered(3).len(),
            1,
            "{kind}: partial subscription delivery broken"
        );
    }
}

#[test]
fn discretization_preserves_correctness() {
    for width in [100u64, 1_500, 10_000] {
        let mut net = net_with(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_discretization(width),
            32,
        );
        let space = net.config().space.clone();
        let sub = Subscription::builder(&space)
            .range("a1", 350_000, 420_000)
            .unwrap()
            .build()
            .unwrap();
        net.subscribe(2, sub, None).unwrap();
        net.run_for_secs(60);
        net.publish(7, Event::new(&space, vec![1, 400_000, 2, 3]).unwrap())
            .unwrap();
        net.publish(7, Event::new(&space, vec![1, 500_000, 2, 3]).unwrap())
            .unwrap();
        net.run_for_secs(60);
        assert_eq!(
            net.delivered(2).len(),
            1,
            "discretization width {width} broke delivery"
        );
    }
}

#[test]
fn content_hash_event_keys_preserve_intersection() {
    let mut net = net_with(
        PubSubConfig::paper_default()
            .with_mapping(MappingKind::AttributeSplit)
            .with_ek_choice(EventKeyChoice::ContentHash)
            .with_primitive(Primitive::MCast),
        33,
    );
    let space = net.config().space.clone();
    // Partial subscription: under ContentHash the mapping must cover the
    // wildcard dimensions too (full-range images).
    let sub = Subscription::builder(&space)
        .range("a3", 0, 30_000)
        .unwrap()
        .build()
        .unwrap();
    net.subscribe(4, sub, None).unwrap();
    net.run_for_secs(120);
    for i in 0..10u64 {
        net.publish(
            8,
            Event::new(&space, vec![i * 99_991, i * 77_773 % 1_000_001, i, 15_000]).unwrap(),
        )
        .unwrap();
    }
    net.run_for_secs(120);
    assert_eq!(net.delivered(4).len(), 10);
}

#[test]
fn string_attributes_work_end_to_end() {
    let space = EventSpace::new(vec![
        AttributeDef::new("topic", 1 << 20),
        AttributeDef::new("severity", 10),
    ]);
    let mut net = net_with(
        PubSubConfig::paper_default()
            .with_space(space.clone())
            .with_mapping(MappingKind::SelectiveAttribute),
        34,
    );
    let sub = Subscription::builder(&space)
        .eq_str("topic", "alerts/fire")
        .range("severity", 3, 9)
        .unwrap()
        .build()
        .unwrap();
    net.subscribe(1, sub, None).unwrap();
    net.run_for_secs(60);
    let topic = space.value_of_str(0, "alerts/fire");
    let other = space.value_of_str(0, "alerts/flood");
    net.publish(5, Event::new(&space, vec![topic, 7]).unwrap())
        .unwrap();
    net.publish(5, Event::new(&space, vec![other, 7]).unwrap())
        .unwrap();
    net.publish(5, Event::new(&space, vec![topic, 1]).unwrap())
        .unwrap();
    net.run_for_secs(60);
    assert_eq!(net.delivered(1).len(), 1);
}

#[test]
fn tiny_spaces_and_small_keyspaces() {
    // 2-attribute space over small domains with an 8-bit ring exercises
    // the "stretching hash" path (2^l > |Ω_i|).
    let space = EventSpace::new(vec![AttributeDef::new("x", 50), AttributeDef::new("y", 50)]);
    for kind in [
        MappingKind::AttributeSplit,
        MappingKind::KeySpaceSplit,
        MappingKind::SelectiveAttribute,
    ] {
        let mut net = PubSubNetwork::builder()
            .nodes(20)
            .net_config(NetConfig::new(35))
            .overlay(
                cbps_overlay::OverlayConfig::paper_default()
                    .with_space(cbps_overlay::KeySpace::new(8)),
            )
            .pubsub(
                PubSubConfig::paper_default()
                    .with_space(space.clone())
                    .with_key_space(cbps_overlay::KeySpace::new(8))
                    .with_mapping(kind),
            )
            .build()
            .expect("valid network configuration");
        let sub = Subscription::builder(&space)
            .range("x", 10, 20)
            .unwrap()
            .range("y", 0, 49)
            .unwrap()
            .build()
            .unwrap();
        net.subscribe(0, sub, None).unwrap();
        net.run_for_secs(60);
        net.publish(10, Event::new(&space, vec![15, 25]).unwrap())
            .unwrap();
        net.publish(10, Event::new(&space, vec![30, 25]).unwrap())
            .unwrap();
        net.run_for_secs(60);
        assert_eq!(net.delivered(0).len(), 1, "{kind} failed on a tiny space");
    }
}

#[test]
fn high_fanout_subscriptions_notify_all_subscribers() {
    let mut net = net_with(PubSubConfig::paper_default(), 36);
    let space = net.config().space.clone();
    // 30 subscribers share an overlapping region; one event matches all.
    for s in 0..30usize {
        let sub = Subscription::builder(&space)
            .range("a0", 100_000, 200_000 + 1_000 * s as u64)
            .unwrap()
            .build()
            .unwrap();
        net.subscribe(s, sub, None).unwrap();
    }
    net.run_for_secs(60);
    net.publish(40, Event::new(&space, vec![150_000, 1, 2, 3]).unwrap())
        .unwrap();
    net.run_for_secs(60);
    for s in 0..30usize {
        assert_eq!(net.delivered(s).len(), 1, "subscriber {s} missed the event");
    }
}

//! End-to-end adaptive-rendezvous invariants under a Zipf flash crowd.
//!
//! Two properties are load-bearing for the dynamic rendezvous layer
//! (DESIGN.md rendezvous section):
//!
//! 1. **Delivery transparency** — splitting a hot key's subscription
//!    population across mirror arcs must not change a single delivered
//!    notification: the adaptive run's delivered set is compared
//!    entry-by-entry against the static baseline replaying the identical
//!    trace.
//! 2. **Control determinism** — split/merge decisions are taken between
//!    engine segments from per-node work windows sampled at absolute
//!    control times, so the hot-rendezvous top-k report, split/merge
//!    counters and delivered set must be bit-identical across schedulers
//!    (heap vs wheel) and shard counts (1 vs 4).

use cbps::{MappingKind, PubSubConfig, PubSubNetwork, RendezvousMode, SubId};
use cbps_bench::report::ObsReport;
use cbps_sim::{NetConfig, ObsMode, SchedulerKind, SimDuration};
use cbps_workload::{Trace, WorkloadConfig, WorkloadGen};

const NODES: usize = 150;
const SEED: u64 = 7;

/// The probe's flash-crowd workload: a Zipf(1.1) publication burst over
/// one selective attribute, hot enough to trip the default split rule.
fn flash_trace(space: cbps::EventSpace) -> Trace {
    let cfg = WorkloadConfig::paper_default(NODES, 4)
        .with_selective_attrs(1)
        .with_counts(NODES * 2, NODES * 4)
        .with_flash_crowd(NODES * 8, 1.1);
    WorkloadGen::new(space, cfg, SEED).gen_trace()
}

struct RunOutcome {
    /// Sorted delivered set, one line per (node, sub, event).
    deliveries: String,
    /// Top-5 nodes by cumulative rendezvous work, `(node, work)`.
    work_top: Vec<(usize, u64)>,
    /// Max cumulative per-node rendezvous work.
    work_max: u64,
    /// Obs-layer hot-node report (top-k peak stored subscriptions).
    hot_nodes: String,
    splits: u64,
    merges: u64,
}

fn run(mode: RendezvousMode, kind: SchedulerKind, shards: usize) -> RunOutcome {
    let mut net = PubSubNetwork::builder()
        .nodes(NODES)
        .net_config(NetConfig::new(SEED).with_scheduler(kind))
        .shards(shards)
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_rendezvous(mode),
        )
        .observability(ObsMode::Full)
        .build()
        .expect("valid network configuration");
    let trace = flash_trace(net.config().space.clone());
    trace.replay(&mut net);
    net.run_until(trace.end_time() + SimDuration::from_secs(300));

    let mut deliveries: Vec<(usize, SubId, cbps::EventId)> = Vec::new();
    for idx in 0..NODES {
        for note in net.delivered(idx) {
            deliveries.push((idx, note.sub_id, note.event_id));
        }
    }
    deliveries.sort_unstable();
    let work = net.rendezvous_work_counts();
    let mut work_top: Vec<(usize, u64)> = work.iter().copied().enumerate().collect();
    work_top.sort_by_key(|&(node, w)| (std::cmp::Reverse(w), node));
    work_top.truncate(5);
    let peaks: Vec<u64> = net
        .peak_stored_counts()
        .into_iter()
        .map(|p| p as u64)
        .collect();
    let (splits, merges) = net.rendezvous_counters();
    let obs = std::mem::take(net.metrics_mut().obs_mut());
    RunOutcome {
        deliveries: format!("{deliveries:?}"),
        work_top,
        work_max: work.iter().copied().max().unwrap_or(0),
        hot_nodes: format!("{:?}", ObsReport::distill(&obs, &peaks).hot_nodes),
        splits,
        merges,
    }
}

/// Delivery transparency: static and adaptive replay the identical trace
/// and must deliver the identical set, while the adaptive policy actually
/// exercises its split *and* merge paths and flattens the hot node.
#[test]
fn adaptive_rendezvous_preserves_delivered_sets() {
    let stat = run(RendezvousMode::Static, SchedulerKind::Heap, 1);
    let adap = run(RendezvousMode::Adaptive, SchedulerKind::Heap, 1);
    assert_eq!((stat.splits, stat.merges), (0, 0), "static must not split");
    assert!(adap.splits > 0, "flash crowd must trip the split rule");
    assert!(adap.merges > 0, "burst end must trip the merge rule");
    assert_eq!(
        stat.deliveries, adap.deliveries,
        "splitting changed the delivered set"
    );
    assert!(
        !adap.deliveries.is_empty() && adap.deliveries != "[]",
        "degenerate workload delivered nothing"
    );
    assert!(
        adap.work_max < stat.work_max,
        "adaptive hot node ({}) not below static hot node ({})",
        adap.work_max,
        stat.work_max
    );
}

/// Control determinism: the hot-rendezvous top-k set, the obs hot-node
/// report and the split/merge counters are identical across schedulers
/// and shard counts under Zipf skew.
#[test]
fn hot_rendezvous_report_is_scheduler_and_shard_independent() {
    let base = run(RendezvousMode::Adaptive, SchedulerKind::Heap, 1);
    assert!(base.splits > 0, "flash crowd must trip the split rule");
    for (kind, shards) in [
        (SchedulerKind::Wheel, 1),
        (SchedulerKind::Heap, 4),
        (SchedulerKind::Wheel, 4),
    ] {
        let other = run(RendezvousMode::Adaptive, kind, shards);
        let label = format!("{kind:?}/{shards} shards");
        assert_eq!(
            base.work_top, other.work_top,
            "work top-k diverged: {label}"
        );
        assert_eq!(
            base.hot_nodes, other.hot_nodes,
            "hot nodes diverged: {label}"
        );
        assert_eq!(
            (base.splits, base.merges),
            (other.splits, other.merges),
            "control counters diverged: {label}"
        );
        assert_eq!(
            base.deliveries, other.deliveries,
            "deliveries diverged: {label}"
        );
    }
}

//! Causal-tracing invariants and observation-neutrality.
//!
//! Every delivered notification must be explainable: its trace chain has to
//! start at the application operation, carry monotone sim-time stamps, and
//! end with a `deliver` stage at the subscriber. And observation must stay
//! observation: a run with tracing enabled produces byte-identical
//! protocol behavior (deliveries, per-class message counts) to the same
//! run with tracing off.

use cbps::{
    ChordBackend, MappingKind, NotifyMode, OverlayBackend, Primitive, PubSubConfig, PubSubNetwork,
    PubSubNetworkBuilder, Subscription,
};
use cbps_pastry::PastryBackend;
use cbps_sim::{NetConfig, ObsMode, SimDuration, Stage, TrafficClass};
use cbps_workload::{WorkloadConfig, WorkloadGen};

fn network_on<B: OverlayBackend>(notify: NotifyMode, seed: u64, obs: ObsMode) -> PubSubNetwork<B> {
    PubSubNetworkBuilder::<B>::new()
        .nodes(60)
        .net_config(NetConfig::new(seed))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::KeySpaceSplit)
                .with_primitive(Primitive::MCast)
                .with_notify_mode(notify),
        )
        .observability(obs)
        .build()
        .expect("valid network configuration")
}

fn network(notify: NotifyMode, seed: u64, obs: ObsMode) -> PubSubNetwork {
    network_on::<ChordBackend>(notify, seed, obs)
}

fn run_workload<B: OverlayBackend>(net: &mut PubSubNetwork<B>, seed: u64) {
    let cfg = WorkloadConfig::paper_default(net.len(), 4).with_counts(60, 60);
    let mut gen = WorkloadGen::new(net.config().space.clone(), cfg, seed);
    let trace = gen.gen_trace();
    trace.replay(net);
    net.run_until(trace.end_time() + SimDuration::from_secs(600));
}

fn check_chains<B: OverlayBackend>(net: &PubSubNetwork<B>, notify: NotifyMode) {
    let mut explained = 0;
    for node in 0..net.len() {
        for note in net.delivered(node) {
            assert!(
                !note.trace.is_none(),
                "delivered note carries no trace under enabled observability"
            );
            let chain = net.explain(note.trace);
            assert!(
                !chain.is_empty(),
                "no stage records for delivered trace {:?}",
                note.trace
            );
            // The chain starts at the application operation...
            assert_eq!(
                chain[0].stage,
                Stage::Publish,
                "chain of a publication trace must start at publish"
            );
            assert_eq!(chain[0].class, TrafficClass::PUBLICATION);
            // ...carries monotone timestamps...
            for pair in chain.windows(2) {
                assert!(
                    pair[0].at <= pair[1].at,
                    "stage timestamps went backwards: {pair:?}"
                );
            }
            // ...and reaches this subscriber with a deliver stage.
            assert!(
                chain
                    .iter()
                    .any(|r| r.stage == Stage::Deliver && r.node == node),
                "no deliver stage at node {node} in chain {chain:?}"
            );
            // A matched event must have crossed a rendezvous node.
            assert!(
                chain.iter().any(|r| r.stage == Stage::RendezvousMatch),
                "delivery without a rendezvous match in {chain:?}"
            );
            if matches!(notify, NotifyMode::Collecting { .. }) {
                // The collecting protocol may deliver via the agent
                // directly, but buffered waits must be recorded somewhere
                // along the way for flushed items.
                assert!(
                    chain
                        .iter()
                        .all(|r| r.stage != Stage::CollectHop || r.class == TrafficClass::COLLECT),
                    "collect hops must ride the collect class: {chain:?}"
                );
            }
            explained += 1;
        }
    }
    assert!(explained > 0, "workload produced no deliveries to explain");
}

#[test]
fn every_delivery_is_explained_immediate() {
    let mut net = network(NotifyMode::Immediate, 11, ObsMode::Full);
    run_workload(&mut net, 11);
    check_chains(&net, NotifyMode::Immediate);
}

#[test]
fn every_delivery_is_explained_buffered() {
    let notify = NotifyMode::Buffered {
        period: SimDuration::from_secs(30),
    };
    let mut net = network(notify, 12, ObsMode::Full);
    run_workload(&mut net, 12);
    check_chains(&net, notify);
    // Buffered runs must record how long notifications waited.
    let obs = net.metrics().obs();
    let waited = obs
        .stage_histogram(TrafficClass::NOTIFICATION, Stage::BufferWait)
        .expect("buffered run records buffer waits");
    assert!(!waited.is_empty());
}

#[test]
fn every_delivery_is_explained_collecting() {
    let notify = NotifyMode::Collecting {
        period: SimDuration::from_secs(30),
    };
    let mut net = network(notify, 13, ObsMode::Full);
    run_workload(&mut net, 13);
    check_chains(&net, notify);
}

#[test]
fn subscription_traces_chain_from_subscribe_to_store() {
    let mut net = network(NotifyMode::Immediate, 14, ObsMode::Full);
    let space = net.config().space.clone();
    let sub = Subscription::builder(&space)
        .range("a0", 0, 500_000)
        .unwrap()
        .build()
        .unwrap();
    net.node(5).unwrap().subscribe(sub, None).unwrap();
    net.run_for_secs(60);
    let sub_trace = net
        .metrics()
        .obs()
        .log()
        .records()
        .iter()
        .find(|r| r.stage == Stage::Subscribe)
        .expect("subscribe stage recorded")
        .trace;
    assert!(sub_trace.is_subscription());
    assert_eq!(sub_trace.node(), Some(5));
    let chain = net.explain(sub_trace);
    assert_eq!(chain[0].stage, Stage::Subscribe);
    assert!(
        chain.iter().any(|r| r.stage == Stage::Store),
        "subscription never stored: {chain:?}"
    );
}

/// Observation must never alter behavior: same seed, same workload, same
/// deliveries and per-class message counts at any observability mode.
#[test]
fn tracing_is_behavior_neutral() {
    let mut outcomes = Vec::new();
    for obs in [ObsMode::Off, ObsMode::Stages, ObsMode::Full] {
        let notify = NotifyMode::Buffered {
            period: SimDuration::from_secs(30),
        };
        let mut net = network(notify, 21, obs);
        run_workload(&mut net, 21);
        let mut deliveries = Vec::new();
        for node in 0..net.len() {
            for note in net.delivered(node) {
                deliveries.push((node, note.sub_id, note.event_id, note.at));
            }
        }
        let m = net.metrics();
        let messages: Vec<u64> = [
            TrafficClass::SUBSCRIPTION,
            TrafficClass::PUBLICATION,
            TrafficClass::NOTIFICATION,
            TrafficClass::COLLECT,
        ]
        .iter()
        .map(|&c| m.messages(c))
        .collect();
        outcomes.push((deliveries, messages));
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "ObsMode::Stages changed protocol behavior"
    );
    assert_eq!(
        outcomes[0], outcomes[2],
        "ObsMode::Full changed protocol behavior"
    );
}

/// The acceptance bar for the whole layer: a figure experiment renders
/// byte-identical tables whether observability is off or fully on.
#[test]
fn figure_tables_identical_under_observation() {
    use cbps_bench::{experiments::run_named, runner, Scale};
    let render = |obs: ObsMode| -> Vec<String> {
        runner::set_observability(obs);
        runner::reset_perf();
        let tables = run_named("fig5", Scale::Quick).expect("known experiment");
        runner::set_observability(ObsMode::Off);
        let _ = runner::take_obs();
        let _ = runner::take_hot_nodes();
        tables.iter().map(|t| t.render()).collect()
    };
    let off = render(ObsMode::Off);
    let on = render(ObsMode::Full);
    assert_eq!(off, on, "observability changed figure output");
}

/// Observability parity across substrates: the exact same workload under
/// full tracing on Chord and on Pastry must explain every delivery through
/// the same causal-stage vocabulary, produce the same per-stage histogram
/// keys, and agree on the observation-independent outcomes (deliveries,
/// per-stage record counts at the end-to-end stages). `set_observability`
/// mid-run behaves identically too: switching tracing on after build
/// records on both substrates.
#[test]
fn observability_is_overlay_generic() {
    struct Profile {
        delivered: Vec<(usize, cbps::SubId, cbps::EventId)>,
        stage_keys: Vec<(String, String)>,
        delivers: usize,
        matches: usize,
    }

    fn profile<B: OverlayBackend>() -> Profile {
        // Build with tracing off, then switch it on through the façade —
        // exercising `set_observability` on the generic network.
        let mut net = network_on::<B>(NotifyMode::Immediate, 41, ObsMode::Off);
        net.set_observability(ObsMode::Full);
        run_workload(&mut net, 41);
        check_chains(&net, NotifyMode::Immediate);

        let mut deliveries = Vec::new();
        for node in 0..net.len() {
            for note in net.delivered(node) {
                deliveries.push((node, note.sub_id, note.event_id));
            }
        }
        deliveries.sort_unstable();
        let obs = net.metrics().obs();
        let mut stage_keys: Vec<(String, String)> = obs
            .stage_histograms()
            .map(|(class, stage, _)| (class.name().to_owned(), stage.name().to_owned()))
            .collect();
        stage_keys.sort();
        let records = obs.log().records();
        let delivers = records.iter().filter(|r| r.stage == Stage::Deliver).count();
        let matches = records
            .iter()
            .filter(|r| r.stage == Stage::RendezvousMatch)
            .count();
        Profile {
            delivered: deliveries,
            stage_keys,
            delivers,
            matches,
        }
    }

    let chord = profile::<ChordBackend>();
    let pastry = profile::<PastryBackend>();

    assert!(
        !chord.delivered.is_empty(),
        "workload produced no deliveries"
    );
    assert_eq!(
        chord.delivered, pastry.delivered,
        "substrates disagree on delivered notifications"
    );
    assert_eq!(
        chord.stage_keys, pastry.stage_keys,
        "substrates record different per-stage histogram vocabularies"
    );
    assert_eq!(
        (chord.delivers, chord.matches),
        (pastry.delivers, pastry.matches),
        "substrates disagree on end-to-end stage record counts"
    );
}

/// With observability off, nothing is recorded: trace ids are still
/// minted (they are cheap bit-packed counters), but no stage records or
/// histograms accumulate, and `explain` comes back empty.
#[test]
fn disabled_observability_records_nothing() {
    let mut net = network(NotifyMode::Immediate, 31, ObsMode::Off);
    run_workload(&mut net, 31);
    let obs = net.metrics().obs();
    assert!(obs.log().is_empty());
    assert_eq!(obs.stage_histograms().count(), 0);
    assert_eq!(obs.named_histograms().count(), 0);
    let mut checked = 0;
    for node in 0..net.len() {
        let traces: Vec<_> = net.delivered(node).iter().map(|n| n.trace).collect();
        for trace in traces {
            assert!(net.explain(trace).is_empty());
            checked += 1;
        }
    }
    assert!(checked > 0, "workload produced no deliveries");
}

#!/bin/sh
# Tier-1 gate: everything here must pass before a change lands.
# The workspace has no external dependencies, so this runs fully offline.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo test --doc"
cargo test --workspace --doc -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint"
fi

if command -v rustfmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> rustfmt not installed; skipping format check"
fi

# Scheduler A/B smoke: the timing wheel must reproduce the heap's event
# order exactly, so a quick-scale figures run has to render byte-identical
# tables under both schedulers, and the simulated event counts must match
# the recorded baseline (wall times legitimately drift; event counts may
# not). Uses a small experiment subset to keep the gate fast.
echo "==> scheduler A/B smoke (figures --scheduler heap|wheel)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
smoke_experiments="route fig6 churn"
for sched in heap wheel; do
    # shellcheck disable=SC2086
    ./target/release/figures --scale quick --jobs "$(nproc)" \
        --scheduler "$sched" --json "$smoke_dir/$sched.json" \
        $smoke_experiments >"$smoke_dir/$sched.tables" 2>/dev/null
done
if ! diff -u "$smoke_dir/heap.tables" "$smoke_dir/wheel.tables"; then
    echo "FAIL: heap and wheel render different tables" >&2
    exit 1
fi
# Compare per-experiment event counts against the committed baseline.
# Reports are one-line JSON; break records apart before extracting fields.
events_of() {
    tr '{' '\n' <"$1" |
        sed -n 's/.*"name": *"\([a-z0-9_]*\)".*"events": *\([0-9]*\).*/\1 \2/p'
}
events_of "$smoke_dir/wheel.json" >"$smoke_dir/wheel.events"
if [ -f BENCH_baseline.json ]; then
    events_of BENCH_baseline.json >"$smoke_dir/baseline.events"
    for exp in $smoke_experiments; do
        base=$(awk -v e="$exp" '$1 == e { print $2 }' "$smoke_dir/baseline.events")
        got=$(awk -v e="$exp" '$1 == e { print $2 }' "$smoke_dir/wheel.events")
        # Skip experiments the baseline didn't measure (recorded as 0).
        if [ -n "$base" ] && [ "$base" != "0" ] && [ "$got" != "$base" ]; then
            echo "FAIL: $exp simulated $got events, baseline recorded $base" >&2
            exit 1
        fi
    done
fi
echo "==> scheduler smoke passed (tables identical, event counts match baseline)"

# Overlay portability smoke: the generic deployment core must keep the
# Chord quick-scale figure tables byte-identical to the committed
# pre-refactor baseline, the same suite must run cleanly over the Pastry
# substrate (its experiments assert cross-overlay delivery parity
# internally), and a trace replayed over both substrates must produce the
# same delivered-set fingerprint.
echo "==> overlay smoke (figures/cbps --overlay chord|pastry)"
overlay_experiments="fig5 fig6 fig7 fig8 fig9a latency fig9b mcast partial hotspot vnodes"
# shellcheck disable=SC2086
./target/release/figures --scale quick --jobs "$(nproc)" \
    $overlay_experiments >"$smoke_dir/chord.tables" 2>/dev/null
if ! diff -u ci/baseline_overlay_chord.tables "$smoke_dir/chord.tables"; then
    echo "FAIL: chord tables drifted from the pre-refactor baseline" >&2
    exit 1
fi
# shellcheck disable=SC2086
./target/release/figures --scale quick --jobs "$(nproc)" --overlay pastry \
    $overlay_experiments >"$smoke_dir/pastry.tables" 2>/dev/null
./target/release/cbps gen-trace --out "$smoke_dir/smoke.trace" \
    --nodes 80 --subs 120 --pubs 240 --seed 5 --match 0.7 >/dev/null
for overlay in chord pastry; do
    ./target/release/cbps run-trace "$smoke_dir/smoke.trace" --nodes 80 --seed 5 \
        --overlay "$overlay" |
        sed -n 's/^delivered-set fingerprint: //p' >"$smoke_dir/$overlay.fp"
done
if ! diff "$smoke_dir/chord.fp" "$smoke_dir/pastry.fp"; then
    echo "FAIL: chord and pastry delivered different notification sets" >&2
    exit 1
fi
echo "==> overlay smoke passed (chord baseline byte-identical, fingerprints match)"

# Shard A/B smoke: the conservative-lookahead sharded engine must be an
# exact drop-in for the single-threaded loop. A quick-scale figures run
# has to render byte-identical tables at --shards 1 and --shards 4, and a
# replayed trace must print byte-identical run-trace output (including the
# delivered-set fingerprint) at both shard counts. Only stdout tables and
# fingerprints are diffed — NOT the report JSON: per-shard 1-in-64 queue
# sampling legitimately changes peak_queue_depth across shard counts.
echo "==> shard A/B smoke (figures/cbps --shards 1|4)"
shard_experiments="route fig6 mcast"
for shards in 1 4; do
    # shellcheck disable=SC2086
    ./target/release/figures --scale quick --jobs "$(nproc)" \
        --shards "$shards" \
        $shard_experiments >"$smoke_dir/shards$shards.tables" 2>/dev/null
    ./target/release/cbps run-trace "$smoke_dir/smoke.trace" --nodes 80 --seed 5 \
        --shards "$shards" >"$smoke_dir/shards$shards.rt"
done
if ! diff -u "$smoke_dir/shards1.tables" "$smoke_dir/shards4.tables"; then
    echo "FAIL: --shards 1 and --shards 4 render different tables" >&2
    exit 1
fi
if ! diff -u "$smoke_dir/shards1.rt" "$smoke_dir/shards4.rt"; then
    echo "FAIL: --shards 1 and --shards 4 replay a trace differently" >&2
    exit 1
fi
echo "==> shard smoke passed (tables and trace replay identical at 1 and 4 shards)"

# Match-engine A/B smoke: the sorted-segment index must be an exact
# drop-in for the counting index at rendezvous nodes. A quick-scale
# figures run has to render byte-identical tables under both engines, and
# a replayed trace must print byte-identical run-trace output (including
# the delivered-set fingerprint). A small `probe match` run then
# differentially checks both engines plus the covering store on a
# skewed workload — it exits non-zero on any match-set mismatch.
echo "==> match-engine A/B smoke (figures/cbps --match-engine counting|sorted)"
engine_experiments="route fig6 mcast"
for engine in counting sorted; do
    # shellcheck disable=SC2086
    ./target/release/figures --scale quick --jobs "$(nproc)" \
        --match-engine "$engine" \
        $engine_experiments >"$smoke_dir/$engine.tables" 2>/dev/null
    ./target/release/cbps run-trace "$smoke_dir/smoke.trace" --nodes 80 --seed 5 \
        --match-engine "$engine" >"$smoke_dir/$engine.rt"
done
if ! diff -u "$smoke_dir/counting.tables" "$smoke_dir/sorted.tables"; then
    echo "FAIL: counting and sorted engines render different tables" >&2
    exit 1
fi
if ! diff -u "$smoke_dir/counting.rt" "$smoke_dir/sorted.rt"; then
    echo "FAIL: counting and sorted engines replay a trace differently" >&2
    exit 1
fi
./target/release/probe match --subs 20000 --seed 7 >/dev/null
echo "==> match-engine smoke passed (tables and trace replay identical, probe differential clean)"

# Pool A/B smoke: the slab pool recycling in-flight envelope/timer slots
# is a pure allocation strategy, so a quick-scale figures run must render
# byte-identical tables with pooling on (reuse) and off (fresh), and a
# replayed trace must print byte-identical run-trace output (including
# the delivered-set fingerprint) under both modes. The allocation audit
# then re-runs the fixed workload under a counting global allocator —
# `probe alloc` exits non-zero unless the steady-state window after
# warmup performs exactly zero heap allocations with the reuse pool.
echo "==> pool A/B smoke (figures/cbps --pool reuse|fresh) and allocation audit"
pool_experiments="route fig6 mcast"
for pool in reuse fresh; do
    # shellcheck disable=SC2086
    ./target/release/figures --scale quick --jobs "$(nproc)" \
        --pool "$pool" \
        $pool_experiments >"$smoke_dir/pool-$pool.tables" 2>/dev/null
    ./target/release/cbps run-trace "$smoke_dir/smoke.trace" --nodes 80 --seed 5 \
        --pool "$pool" >"$smoke_dir/pool-$pool.rt"
done
if ! diff -u "$smoke_dir/pool-reuse.tables" "$smoke_dir/pool-fresh.tables"; then
    echo "FAIL: --pool reuse and --pool fresh render different tables" >&2
    exit 1
fi
if ! diff -u "$smoke_dir/pool-reuse.rt" "$smoke_dir/pool-fresh.rt"; then
    echo "FAIL: --pool reuse and --pool fresh replay a trace differently" >&2
    exit 1
fi
./target/release/probe alloc --nodes 120 --seed 7 >/dev/null
echo "==> pool smoke passed (tables and trace replay identical, steady state allocation-free)"

# Build-pipeline smoke: the deployment build path must stay near-linear
# and parallel construction must be behaviorally invisible. `probe scale`
# sweeps 10^3 and 10^4 nodes under a counting allocator and a build-time
# budget, checking per-node cost flatness (<= 2x across the sweep) and
# serial-vs-4-worker routing-table parity at every point — it exits
# non-zero on any drift. Then a quick-scale figures subset must render
# byte-identical tables at --jobs 1 and --jobs 4: --jobs drives both the
# sweep-point worker pool and the parallel node construction, so this is
# the end-to-end serial-vs-parallel byte-diff.
echo "==> build-pipeline smoke (probe scale, figures --jobs 1|4)"
./target/release/probe scale --max-nodes 10000 --budget-secs 60 >/dev/null
jobs_experiments="route fig6 mcast"
for jobs in 1 4; do
    # shellcheck disable=SC2086
    ./target/release/figures --scale quick --jobs "$jobs" \
        $jobs_experiments >"$smoke_dir/jobs$jobs.tables" 2>/dev/null
done
if ! diff -u "$smoke_dir/jobs1.tables" "$smoke_dir/jobs4.tables"; then
    echo "FAIL: --jobs 1 and --jobs 4 render different tables" >&2
    exit 1
fi
echo "==> build-pipeline smoke passed (near-linear build, parallel parity)"

# Rendezvous A/B smoke: the adaptive rendezvous policy splits hot keys'
# subscription populations across mirror arcs, which must be delivery-
# transparent: on a Zipf flash-crowd trace, static and adaptive runs must
# print the same delivered-set fingerprint at 1 and 4 shards, and the
# adaptive run's full output (including its split/merge counters) must be
# byte-identical across shard counts. `probe rendezvous` then checks the
# load-flattening claim end-to-end — it exits non-zero unless adaptive
# strictly lowers the max/mean node-load ratio with identical delivered
# sets and shard-independent control decisions.
echo "==> rendezvous A/B smoke (cbps --rendezvous static|adaptive, 1|4 shards)"
./target/release/cbps gen-trace --out "$smoke_dir/zipf.trace" \
    --nodes 100 --subs 300 --pubs 600 --selective 1 --flash-crowd 1200 \
    --seed 9 >/dev/null
for mode in static adaptive; do
    for shards in 1 4; do
        ./target/release/cbps run-trace "$smoke_dir/zipf.trace" --nodes 100 \
            --seed 9 --mapping m3 --rendezvous "$mode" --shards "$shards" \
            >"$smoke_dir/rdv-$mode-$shards.rt"
        sed -n 's/^delivered-set fingerprint: //p' \
            "$smoke_dir/rdv-$mode-$shards.rt" >"$smoke_dir/rdv-$mode-$shards.fp"
    done
done
for f in rdv-static-4 rdv-adaptive-1 rdv-adaptive-4; do
    if ! diff "$smoke_dir/rdv-static-1.fp" "$smoke_dir/$f.fp"; then
        echo "FAIL: $f delivered a different notification set than rdv-static-1" >&2
        exit 1
    fi
done
if ! diff -u "$smoke_dir/rdv-adaptive-1.rt" "$smoke_dir/rdv-adaptive-4.rt"; then
    echo "FAIL: adaptive rendezvous control decisions differ across shard counts" >&2
    exit 1
fi
if ! grep -q "^rendezvous splits: [1-9]" "$smoke_dir/rdv-adaptive-1.rt"; then
    echo "FAIL: flash crowd did not trip the adaptive split rule" >&2
    exit 1
fi
./target/release/probe rendezvous --nodes 150 >/dev/null
echo "==> rendezvous smoke passed (fingerprint parity, shard-deterministic splits, hotspot flattened)"

echo "==> tier-1 gate passed"

#!/bin/sh
# Tier-1 gate: everything here must pass before a change lands.
# The workspace has no external dependencies, so this runs fully offline.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo test --doc"
cargo test --workspace --doc -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint"
fi

if command -v rustfmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> rustfmt not installed; skipping format check"
fi

echo "==> tier-1 gate passed"

#!/bin/sh
# Tier-1 gate: everything here must pass before a change lands.
# The workspace has no external dependencies, so this runs fully offline.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo test --doc"
cargo test --workspace --doc -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint"
fi

if command -v rustfmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> rustfmt not installed; skipping format check"
fi

# Scheduler A/B smoke: the timing wheel must reproduce the heap's event
# order exactly, so a quick-scale figures run has to render byte-identical
# tables under both schedulers, and the simulated event counts must match
# the recorded baseline (wall times legitimately drift; event counts may
# not). Uses a small experiment subset to keep the gate fast.
echo "==> scheduler A/B smoke (figures --scheduler heap|wheel)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
smoke_experiments="route fig6 churn"
for sched in heap wheel; do
    # shellcheck disable=SC2086
    ./target/release/figures --scale quick --jobs "$(nproc)" \
        --scheduler "$sched" --json "$smoke_dir/$sched.json" \
        $smoke_experiments >"$smoke_dir/$sched.tables" 2>/dev/null
done
if ! diff -u "$smoke_dir/heap.tables" "$smoke_dir/wheel.tables"; then
    echo "FAIL: heap and wheel render different tables" >&2
    exit 1
fi
# Compare per-experiment event counts against the committed baseline.
# Reports are one-line JSON; break records apart before extracting fields.
events_of() {
    tr '{' '\n' <"$1" |
        sed -n 's/.*"name": *"\([a-z0-9_]*\)".*"events": *\([0-9]*\).*/\1 \2/p'
}
events_of "$smoke_dir/wheel.json" >"$smoke_dir/wheel.events"
if [ -f BENCH_baseline.json ]; then
    events_of BENCH_baseline.json >"$smoke_dir/baseline.events"
    for exp in $smoke_experiments; do
        base=$(awk -v e="$exp" '$1 == e { print $2 }' "$smoke_dir/baseline.events")
        got=$(awk -v e="$exp" '$1 == e { print $2 }' "$smoke_dir/wheel.events")
        # Skip experiments the baseline didn't measure (recorded as 0).
        if [ -n "$base" ] && [ "$base" != "0" ] && [ "$got" != "$base" ]; then
            echo "FAIL: $exp simulated $got events, baseline recorded $base" >&2
            exit 1
        fi
    done
fi
echo "==> scheduler smoke passed (tables identical, event counts match baseline)"

echo "==> tier-1 gate passed"

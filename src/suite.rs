//! Shared prelude for the repository-level examples and integration tests.
//!
//! Re-exports the crates of the workspace under one roof so examples can
//! `use cbps_repro::prelude::*` if they prefer a single import. The
//! examples in this repository import the crates directly for clarity;
//! this module mainly documents the workspace surface.

/// Everything a downstream experiment typically needs.
pub mod prelude {
    pub use cbps::{
        AkMapping, AttributeDef, ChordBackend, ChordPubSub, Constraint, Event, EventId, EventSpace,
        MappingKind, NotifyMode, Oracle, OverlayBackend, Primitive, PubSubConfig, PubSubNetwork,
        PubSubNetworkBuilder, SubId, Subscription,
    };
    pub use cbps_overlay::{Key, KeyRange, KeyRangeSet, KeySpace, OverlayConfig, Peer};
    pub use cbps_pastry::{PastryBackend, PastryConfig, PastryPubSub, PastryPubSubBuilder};
    pub use cbps_sim::{NetConfig, SimDuration, SimTime, TrafficClass};
    pub use cbps_workload::{Trace, WorkloadConfig, WorkloadGen};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let cfg = PubSubConfig::paper_default().with_mapping(MappingKind::SelectiveAttribute);
        assert_eq!(cfg.space.dims(), 4);
        let _ = NetConfig::new(1);
    }
}

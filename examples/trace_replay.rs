//! Reproducible experiments via trace files: generate a workload, save it
//! to the line-oriented text format, reload it, and replay it against two
//! independently-built networks — deliveries must be identical.
//!
//! ```text
//! cargo run --example trace_replay
//! ```

use std::collections::BTreeSet;

use cbps::{MappingKind, PubSubConfig, PubSubNetwork};
use cbps_sim::{NetConfig, SimDuration};
use cbps_workload::{trace_from_str, trace_to_string, WorkloadConfig, WorkloadGen};

fn build(seed: u64) -> PubSubNetwork {
    PubSubNetwork::builder()
        .nodes(60)
        .net_config(NetConfig::new(seed))
        .pubsub(PubSubConfig::paper_default().with_mapping(MappingKind::SelectiveAttribute))
        .build()
        .expect("valid network configuration")
}

fn main() {
    let space = cbps::EventSpace::paper_default();
    let cfg = WorkloadConfig::paper_default(60, 4)
        .with_counts(40, 80)
        .with_matching_probability(0.8)
        .with_sub_ttl(Some(SimDuration::from_secs(600)));
    let mut gen = WorkloadGen::new(space.clone(), cfg, 99);
    let trace = gen.gen_trace();

    // Serialize and reload.
    let text = trace_to_string(&space, &trace);
    let path = std::env::temp_dir().join("cbps-demo.trace");
    std::fs::write(&path, &text).expect("write trace file");
    let loaded = trace_from_str(&space, &std::fs::read_to_string(&path).expect("read"))
        .expect("parse trace file");
    println!(
        "saved {} ops ({} bytes) to {} and reloaded them",
        loaded.len(),
        text.len(),
        path.display()
    );

    // Replay the original and the reloaded trace on fresh networks.
    let mut net_a = build(99);
    let mut net_b = build(99);
    let out_a = trace.replay(&mut net_a);
    let out_b = loaded.replay(&mut net_b);
    net_a.run_until(trace.end_time() + SimDuration::from_secs(300));
    net_b.run_until(loaded.end_time() + SimDuration::from_secs(300));

    let collect = |net: &PubSubNetwork| {
        (0..net.len())
            .flat_map(|i| net.delivered(i).iter().map(|n| (n.sub_id, n.event_id)))
            .collect::<BTreeSet<_>>()
    };
    let a = collect(&net_a);
    let b = collect(&net_b);
    println!("deliveries: original {}, reloaded {}", a.len(), b.len());
    assert_eq!(a, b, "replay must be bit-identical");
    assert_eq!(out_a.sub_ids, out_b.sub_ids);
    println!("identical outcomes — the trace file fully determines the run ✓");
}

//! Quickstart: stand up a content-based pub/sub network on a simulated
//! Chord overlay, subscribe, publish, and receive notifications.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cbps::{Event, MappingKind, Primitive, PubSubConfig, PubSubNetwork, Subscription};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 100-node deployment using the paper's defaults: 2^13 key space,
    // Key Space-Split mapping, the native m-cast primitive.
    let mut net = PubSubNetwork::builder()
        .nodes(100)
        .seed(42)
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::KeySpaceSplit)
                .with_primitive(Primitive::MCast),
        )
        .build()?;
    let space = net.config().space.clone();
    println!("network: {} nodes over a 2^13 Chord ring", net.len());
    println!("event space: {space}");

    // Node 7 subscribes: a0 in [100_000, 250_000] AND a2 in [0, 50_000].
    let sub = Subscription::builder(&space)
        .range("a0", 100_000, 250_000)?
        .range("a2", 0, 50_000)?
        .build()?;
    println!("node 7 subscribes: {sub}");
    let sub_id = net.node(7)?.subscribe(sub, None)?;
    net.run_for_secs(10);

    // Two publications from node 60: one matching, one not.
    let hit = Event::new(&space, vec![200_000, 5, 20_000, 999])?;
    let miss = Event::new(&space, vec![999_000, 5, 20_000, 999])?;
    println!("node 60 publishes {hit} (matches) and {miss} (does not)");
    net.node(60)?.publish(hit)?;
    net.node(60)?.publish(miss)?;
    net.run_for_secs(10);

    // Inspect what the subscriber saw.
    for note in net.delivered(7) {
        println!(
            "node 7 notified at t={}: subscription {} matched event {} = {}",
            note.at, note.sub_id, note.event_id, note.event
        );
        assert_eq!(note.sub_id, sub_id);
    }
    assert_eq!(net.delivered(7).len(), 1);

    // The run's traffic, by class.
    let m = net.metrics();
    println!(
        "one-hop messages: {} subscription, {} publication, {} notification",
        m.messages(cbps_sim::TrafficClass::SUBSCRIPTION),
        m.messages(cbps_sim::TrafficClass::PUBLICATION),
        m.messages(cbps_sim::TrafficClass::NOTIFICATION),
    );
    Ok(())
}

//! Self-configuration demo: nodes join, leave gracefully, and crash while
//! the pub/sub service keeps delivering — the property that motivates the
//! whole architecture (§1, §4.1).
//!
//! ```text
//! cargo run --example churn_demo
//! ```

use cbps::{Event, MappingKind, PubSubConfig, PubSubNetwork, Subscription};
use cbps_overlay::OverlayConfig;
use cbps_sim::TrafficClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = PubSubNetwork::builder()
        .nodes(60)
        .seed(3)
        .overlay(OverlayConfig::paper_default().with_maintenance(true))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_replication(2),
        )
        .build()
        .expect("valid network configuration");
    let space = net.config().space.clone();

    // Ten subscribers on the low indices (they stay alive throughout).
    let mut sub_count = 0;
    for s in 0..10usize {
        let lo = 50_000 * s as u64;
        let sub = Subscription::builder(&space)
            .range("a1", lo, lo + 60_000)?
            .build()?;
        net.subscribe(s, sub, None).unwrap();
        sub_count += 1;
    }
    net.run_for_secs(60);
    println!("{sub_count} subscriptions stored; replication factor 2");

    let publish_round = |net: &mut PubSubNetwork, base: u64| {
        for i in 0..20u64 {
            let e = Event::new_unchecked(vec![1, (base + i * 25_000) % 560_000, 2, 3]);
            net.publish(30, e).unwrap();
            net.run_for_secs(5);
        }
    };

    publish_round(&mut net, 0);
    net.run_for_secs(60);
    let before: usize = (0..10).map(|s| net.delivered(s).len()).sum();
    println!("phase 1 (stable ring): {before} notifications delivered");

    // Churn: two graceful leaves, three crashes, one join.
    println!("churn: nodes 50, 51 leave; nodes 52, 53, 54 crash; one node joins");
    net.leave(50);
    net.leave(51);
    net.crash(52);
    net.crash(53);
    net.crash(54);
    let newcomer = net.join_new_node("fresh-node", 0);
    net.run_for_secs(120); // stabilization + replica promotion + state pull

    publish_round(&mut net, 7_000);
    net.run_for_secs(120);
    let after: usize = (0..10).map(|s| net.delivered(s).len()).sum();
    println!(
        "phase 2 (after churn): {} new notifications delivered",
        after - before
    );

    let m = net.metrics();
    println!(
        "state transfer: {} one-hop messages; replicas promoted: {}",
        m.messages(TrafficClass::STATE_TRANSFER),
        m.counter("replicas.promoted"),
    );
    println!(
        "joined node {newcomer} now stores {} subscriptions",
        net.app(newcomer).store().len()
    );

    assert!(after > before, "service must keep delivering after churn");
    Ok(())
}

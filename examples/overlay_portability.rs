//! Portability demo (§3.1, footnote 1): the same content-based pub/sub
//! layer — same mappings, same workload, same seeds — hosted first by the
//! Chord overlay, then by the Pastry overlay. Logical deliveries are
//! identical; only the routing fabric underneath differs.
//!
//! ```text
//! cargo run --example overlay_portability
//! ```

use std::collections::BTreeSet;

use cbps::{MappingKind, Primitive, PubSubConfig, PubSubNetwork};
use cbps_pastry::PastryPubSubBuilder;
use cbps_sim::TrafficClass;
use cbps_workload::{OpKind, WorkloadConfig, WorkloadGen};

fn main() {
    let nodes = 80;
    let seed = 2025;
    let pubsub = PubSubConfig::paper_default()
        .with_mapping(MappingKind::SelectiveAttribute)
        .with_primitive(Primitive::MCast);

    let mut chord = PubSubNetwork::builder()
        .nodes(nodes)
        .seed(seed)
        .pubsub(pubsub.clone())
        .build()
        .expect("valid network configuration");
    // Same deployment façade, different type parameter: `PastryPubSub`
    // is `PubSubNetwork<PastryBackend>`.
    let mut pastry = PastryPubSubBuilder::new()
        .nodes(nodes)
        .seed(seed)
        .pubsub(pubsub)
        .build()
        .expect("valid network configuration");

    let wl = WorkloadConfig::paper_default(nodes, 4)
        .with_counts(50, 100)
        .with_matching_probability(0.8);
    let mut gen = WorkloadGen::new(chord.config().space.clone(), wl, seed);
    let trace = gen.gen_trace();
    println!(
        "replaying {} subscriptions + {} publications over both overlays ({nodes} nodes)…\n",
        trace.sub_count(),
        trace.pub_count()
    );

    for op in trace.ops() {
        chord.run_until(op.at);
        pastry.run_until(op.at);
        match &op.kind {
            OpKind::Subscribe { sub, ttl } => {
                chord.subscribe(op.node, sub.clone(), *ttl).unwrap();
                pastry.subscribe(op.node, sub.clone(), *ttl).unwrap();
            }
            OpKind::Publish { event } => {
                chord.publish(op.node, event.clone()).unwrap();
                pastry.publish(op.node, event.clone()).unwrap();
            }
        }
    }
    chord.run_for_secs(300);
    pastry.run_for_secs(300);

    let deliveries = |f: &dyn Fn(usize) -> Vec<(cbps::SubId, cbps::EventId)>| {
        (0..nodes).flat_map(f).collect::<BTreeSet<_>>()
    };
    let chord_set = deliveries(&|i| {
        chord
            .delivered(i)
            .iter()
            .map(|n| (n.sub_id, n.event_id))
            .collect()
    });
    let pastry_set = deliveries(&|i| {
        pastry
            .delivered(i)
            .iter()
            .map(|n| (n.sub_id, n.event_id))
            .collect()
    });

    println!("deliveries over Chord : {}", chord_set.len());
    println!("deliveries over Pastry: {}", pastry_set.len());
    assert_eq!(
        chord_set, pastry_set,
        "the overlays must agree on every notification"
    );
    println!("identical (sub, event) delivery sets ✓\n");

    for (name, m) in [("chord", chord.metrics()), ("pastry", pastry.metrics())] {
        println!(
            "{name}: one-hop messages — sub {}, pub {}, notify {}",
            m.messages(TrafficClass::SUBSCRIPTION),
            m.messages(TrafficClass::PUBLICATION),
            m.messages(TrafficClass::NOTIFICATION),
        );
    }
    println!("\nsame semantics, different routing fabric — the paper's portability claim.");
}

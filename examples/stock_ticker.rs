//! Stock-ticker scenario: a market data stream with strong temporal
//! locality, demonstrating the notification **buffering + collecting**
//! optimizations of §4.3.2.
//!
//! Traders subscribe to price bands of specific symbols; the exchange
//! publishes a stream of ticks whose consecutive prices move in small
//! steps. The example runs the same stream twice — once with immediate
//! notifications, once with buffering + collecting — and reports the
//! notification message savings.
//!
//! ```text
//! cargo run --example stock_ticker
//! ```

use cbps::{
    AttributeDef, Event, EventSpace, MappingKind, NotifyMode, Primitive, PubSubConfig,
    PubSubNetwork, Subscription,
};
use cbps_sim::{SimDuration, TrafficClass};

/// Builds the market: attributes are (symbol, price in cents, size).
fn market_space() -> EventSpace {
    EventSpace::new(vec![
        AttributeDef::new("symbol", 1 << 16),
        AttributeDef::new("price", 1_000_000),
        AttributeDef::new("size", 100_000),
    ])
}

fn run(mode: NotifyMode) -> (u64, u64, usize) {
    let space = market_space();
    let mut net = PubSubNetwork::builder()
        .nodes(120)
        .seed(7)
        .pubsub(
            PubSubConfig::paper_default()
                .with_space(space.clone())
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_primitive(Primitive::MCast)
                .with_notify_mode(mode),
        )
        .build()
        .expect("valid network configuration");

    // Twenty traders watch ACME price bands around 500.00 (50_000 cents).
    for trader in 0..20usize {
        let lo = 45_000 + 300 * trader as u64;
        let sub = Subscription::builder(&space)
            .eq_str("symbol", "ACME")
            .range("price", lo, lo + 4_000)
            .unwrap()
            .build()
            .unwrap();
        net.subscribe(trader, sub, None).unwrap();
    }
    net.run_for_secs(30);

    // The exchange (node 100) streams 300 ticks; the price random-walks in
    // small steps — consecutive events hit the same rendezvous region.
    let symbol = space.value_of_str(0, "ACME");
    let mut price: i64 = 50_000;
    for i in 0..300u64 {
        price += ((i * 2654435761) % 401) as i64 - 200; // deterministic walk
        price = price.clamp(44_000, 56_000);
        let tick = Event::new(&space, vec![symbol, price as u64, 100 + i]).unwrap();
        net.publish(100, tick).unwrap();
        net.run_for_secs(1); // one tick per second
    }
    net.run_for_secs(300); // drain buffers

    let delivered: usize = (0..20).map(|t| net.delivered(t).len()).sum();
    let m = net.metrics();
    let notify_msgs = m.messages(TrafficClass::NOTIFICATION) + m.messages(TrafficClass::COLLECT);
    (notify_msgs, m.counter("notifications.delivered"), delivered)
}

fn main() {
    println!("stock ticker: 20 traders, 300 ticks, price random-walk\n");
    let (base_msgs, base_notes, base_delivered) = run(NotifyMode::Immediate);
    println!(
        "immediate:        {base_msgs:>6} notification one-hop messages, {base_notes} notifications"
    );
    let period = SimDuration::from_secs(10);
    let (buf_msgs, buf_notes, buf_delivered) = run(NotifyMode::Buffered { period });
    println!(
        "buffered (10s):   {buf_msgs:>6} notification one-hop messages, {buf_notes} notifications"
    );
    let (col_msgs, col_notes, col_delivered) = run(NotifyMode::Collecting { period });
    println!(
        "buffer + collect: {col_msgs:>6} notification one-hop messages, {col_notes} notifications"
    );

    assert_eq!(
        base_delivered, buf_delivered,
        "buffering must not lose ticks"
    );
    assert_eq!(
        base_delivered, col_delivered,
        "collecting must not lose ticks"
    );
    println!(
        "\nsavings vs immediate: buffering {:.0}%, buffering+collecting {:.0}%",
        100.0 * (1.0 - buf_msgs as f64 / base_msgs as f64),
        100.0 * (1.0 - col_msgs as f64 / base_msgs as f64),
    );
    println!("every configuration delivered the same {base_delivered} matched ticks");
}

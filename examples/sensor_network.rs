//! Sensor-network scenario: highly selective 'type' attributes,
//! demonstrating why **Selective-Attribute** (mapping 3) excels when
//! subscriptions carry an equality constraint (§4.2, §5.2).
//!
//! A building's sensors publish readings typed by kind (temperature,
//! humidity, smoke, …); monitoring stations subscribe to one kind with
//! loose value bands. The example compares the rendezvous keys and
//! subscription traffic of the three mappings on the same workload.
//!
//! ```text
//! cargo run --example sensor_network
//! ```

use cbps::{
    AkMapping, AttributeDef, Event, EventSpace, MappingKind, Primitive, PubSubConfig,
    PubSubNetwork, Subscription,
};
use cbps_overlay::KeySpace;
use cbps_sim::TrafficClass;

/// (kind, floor, value, station-id)
fn sensor_space() -> EventSpace {
    EventSpace::new(vec![
        AttributeDef::new("kind", 16),
        AttributeDef::new("floor", 64),
        AttributeDef::new("value", 100_000),
        AttributeDef::new("sensor", 4_096),
    ])
}

fn subscriptions(space: &EventSpace) -> Vec<Subscription> {
    let mut subs = Vec::new();
    for kind in 0..4u64 {
        for floor_band in 0..5u64 {
            subs.push(
                Subscription::builder(space)
                    .eq("kind", kind)
                    .range("floor", floor_band * 12, floor_band * 12 + 15)
                    .unwrap()
                    .range("value", 10_000, 90_000)
                    .unwrap()
                    .build()
                    .unwrap(),
            );
        }
    }
    subs
}

fn main() {
    let space = sensor_space();
    let subs = subscriptions(&space);
    let keys = KeySpace::new(13);

    println!(
        "sensor network: {} subscriptions, each with an equality on 'kind'\n",
        subs.len()
    );
    println!("rendezvous keys per subscription (lower = cheaper to place and store):");
    for kind in [
        MappingKind::AttributeSplit,
        MappingKind::KeySpaceSplit,
        MappingKind::SelectiveAttribute,
    ] {
        let mapping = AkMapping::new(kind, &space, keys);
        let mean: f64 = subs
            .iter()
            .map(|s| mapping.sk(s).count() as f64)
            .sum::<f64>()
            / subs.len() as f64;
        println!("  {kind}: {mean:.1}");
    }

    // Drive the full system under mapping 3 and verify selective routing
    // end to end.
    let mut net = PubSubNetwork::builder()
        .nodes(80)
        .seed(11)
        .pubsub(
            PubSubConfig::paper_default()
                .with_space(space.clone())
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_primitive(Primitive::MCast),
        )
        .build()
        .expect("valid network configuration");
    for (i, sub) in subs.iter().enumerate() {
        net.subscribe(i % 20, sub.clone(), None).unwrap();
    }
    net.run_for_secs(30);

    // 200 readings from sensors across the building; kind 0..8, so half
    // the readings have no interested station.
    let mut matched_kinds = 0u32;
    for i in 0..200u64 {
        let kind = i % 8;
        if kind < 4 {
            matched_kinds += 1;
        }
        let reading = Event::new(
            &space,
            vec![kind, (i * 7) % 64, 10_000 + (i * 449) % 80_000, i % 4_096],
        )
        .unwrap();
        net.publish(20 + (i % 60) as usize, reading).unwrap();
    }
    net.run_for_secs(120);

    let delivered: usize = (0..20).map(|s| net.delivered(s).len()).sum();
    let m = net.metrics();
    println!("\nafter 200 readings:");
    println!("  notifications delivered: {delivered}");
    println!(
        "  one-hop messages: sub {}, pub {}, notify {}",
        m.messages(TrafficClass::SUBSCRIPTION),
        m.messages(TrafficClass::PUBLICATION),
        m.messages(TrafficClass::NOTIFICATION),
    );
    assert!(delivered > 0);
    // Readings of kinds nobody watches generate no notifications.
    assert!(matched_kinds > 0);
}
